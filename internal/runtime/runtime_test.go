package runtime

import (
	"bytes"
	"testing"

	"repro/internal/neuron"
	"repro/internal/passes"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
)

func randConst(shape tensor.Shape, seed uint64) *relay.Constant {
	t := tensor.New(tensor.Float32, shape)
	t.FillUniform(tensor.NewRNG(seed), -0.5, 0.5)
	return relay.Const(t)
}

// smallCNN: conv-bias-relu -> maxpool -> conv-bias-relu -> gap -> dense ->
// softmax, sized so the simulated APU is worth its invocation overhead
// (mobile-model-scale convolution workloads).
func smallCNN() *relay.Module {
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 32, 32, 16))
	c1 := relay.NewCall(relay.OpConv2D, []relay.Expr{data, randConst(tensor.Shape{32, 3, 3, 16}, 1)},
		relay.Attrs{"padding": []int{1, 1}})
	b1 := relay.NewCall(relay.OpBiasAdd, []relay.Expr{c1, randConst(tensor.Shape{32}, 2)}, nil)
	r1 := relay.NewCall(relay.OpReLU, []relay.Expr{b1}, nil)
	p1 := relay.NewCall(relay.OpMaxPool2D, []relay.Expr{r1},
		relay.Attrs{"pool_size": []int{2, 2}, "strides": []int{2, 2}})
	c2 := relay.NewCall(relay.OpConv2D, []relay.Expr{p1, randConst(tensor.Shape{64, 3, 3, 32}, 3)},
		relay.Attrs{"padding": []int{1, 1}})
	r2 := relay.NewCall(relay.OpReLU, []relay.Expr{c2}, nil)
	gap := relay.NewCall(relay.OpGlobalAvgPool, []relay.Expr{r2}, nil)
	flat := relay.NewCall(relay.OpBatchFlatten, []relay.Expr{gap}, nil)
	fc := relay.NewCall(relay.OpDense, []relay.Expr{flat, randConst(tensor.Shape{10, 64}, 4)}, nil)
	sm := relay.NewCall(relay.OpSoftmax, []relay.Expr{fc}, nil)
	return relay.NewModule(relay.NewFunc([]*relay.Var{data}, sm))
}

// cnnWithUnsupported inserts a leaky_relu (outside the Neuron op set) in the
// middle, forcing a host gap between two external regions.
func cnnWithUnsupported() *relay.Module {
	data := relay.NewVar("data", relay.TType(tensor.Float32, 1, 8, 8, 3))
	c1 := relay.NewCall(relay.OpConv2D, []relay.Expr{data, randConst(tensor.Shape{4, 3, 3, 3}, 1)},
		relay.Attrs{"padding": []int{1, 1}})
	lk := relay.NewCall(relay.OpLeakyReLU, []relay.Expr{c1}, relay.Attrs{"alpha": 0.1})
	c2 := relay.NewCall(relay.OpConv2D, []relay.Expr{lk, randConst(tensor.Shape{4, 3, 3, 4}, 2)},
		relay.Attrs{"padding": []int{1, 1}})
	r2 := relay.NewCall(relay.OpReLU, []relay.Expr{c2}, nil)
	return relay.NewModule(relay.NewFunc([]*relay.Var{data}, r2))
}

func input(shape tensor.Shape, seed uint64) *tensor.Tensor {
	t := tensor.New(tensor.Float32, shape)
	t.FillUniform(tensor.NewRNG(seed), 0, 1)
	return t
}

func runModule(t *testing.T, m *relay.Module, opts BuildOptions, in *tensor.Tensor) (*GraphModule, *tensor.Tensor) {
	t.Helper()
	lib, err := Build(m, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	gm := NewGraphModule(lib)
	gm.SetInput(gm.InputNames()[0], in)
	if err := gm.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return gm, gm.MustOutput(0)
}

func TestTVMOnlyExecution(t *testing.T) {
	m := smallCNN()
	in := input(tensor.Shape{1, 32, 32, 16}, 9)
	gm, out := runModule(t, m, BuildOptions{OptLevel: 3}, in)
	if !out.Shape.Equal(tensor.Shape{1, 10}) {
		t.Fatalf("output shape %s", out.Shape)
	}
	var sum float64
	for i := 0; i < 10; i++ {
		sum += out.GetF(i)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Errorf("softmax output sums to %g", sum)
	}
	prof := gm.LastProfile()
	if prof == nil || prof.Total() <= 0 {
		t.Error("no simulated cost recorded")
	}
	if prof.Launches[soc.KindAPU] != 0 {
		t.Error("TVM-only run must not touch the APU")
	}
}

func TestBYOCMatchesTVMOnly(t *testing.T) {
	in := input(tensor.Shape{1, 32, 32, 16}, 10)
	_, ref := runModule(t, smallCNN(), BuildOptions{OptLevel: 3}, in)
	gm, got := runModule(t, smallCNN(), BuildOptions{OptLevel: 3, UseNIR: true}, in)
	if !tensor.AllClose(got, ref, 1e-4, 1e-4) {
		t.Errorf("BYOC output differs from TVM-only, max diff %g", tensor.MaxAbsDiff(got, ref))
	}
	prof := gm.LastProfile()
	if prof.Subgraphs == 0 {
		t.Error("BYOC run reported no external subgraphs")
	}
	if prof.Launches[soc.KindAPU] == 0 {
		t.Error("BYOC CPU+APU run never used the APU")
	}
}

func TestBYOCFasterThanTVMOnly(t *testing.T) {
	in := input(tensor.Shape{1, 32, 32, 16}, 11)
	tvm, _ := runModule(t, smallCNN(), BuildOptions{OptLevel: 3}, in)
	byoc, _ := runModule(t, smallCNN(), BuildOptions{OptLevel: 3, UseNIR: true}, in)
	tTVM := tvm.LastProfile().Total()
	tBYOC := byoc.LastProfile().Total()
	if tBYOC >= tTVM {
		t.Errorf("BYOC (%s) should beat TVM-only (%s) — the paper's headline effect", tBYOC, tTVM)
	}
}

func TestPartitionSplitsAroundUnsupportedAndMatches(t *testing.T) {
	in := input(tensor.Shape{1, 8, 8, 3}, 12)
	_, ref := runModule(t, cnnWithUnsupported(), BuildOptions{OptLevel: 3}, in)
	gm, got := runModule(t, cnnWithUnsupported(), BuildOptions{OptLevel: 3, UseNIR: true}, in)
	if !tensor.AllClose(got, ref, 1e-4, 1e-4) {
		t.Errorf("split-graph BYOC differs, max %g", tensor.MaxAbsDiff(got, ref))
	}
	ext := gm.Lib().Module.ExternalFuncs("nir")
	if len(ext) != 2 {
		t.Errorf("expected 2 external regions around leaky_relu, got %d", len(ext))
	}
	if gm.LastProfile().Subgraphs != 2 {
		t.Errorf("expected 2 subgraph invocations, got %d", gm.LastProfile().Subgraphs)
	}
}

func TestUnfusedSlowerThanFused(t *testing.T) {
	in := input(tensor.Shape{1, 32, 32, 16}, 13)
	fused, _ := runModule(t, smallCNN(), BuildOptions{OptLevel: 3}, in)
	unfused, _ := runModule(t, smallCNN(), BuildOptions{OptLevel: 0}, in)
	if fused.LastProfile().Total() >= unfused.LastProfile().Total() {
		t.Errorf("fusion should reduce simulated time: fused %s vs unfused %s",
			fused.LastProfile().Total(), unfused.LastProfile().Total())
	}
	// Numerics must agree regardless of fusion.
	fusedOut := fused.MustOutput(0)
	unfusedOut := unfused.MustOutput(0)
	if !tensor.AllClose(fusedOut, unfusedOut, 1e-4, 1e-4) {
		t.Error("fusion changed numerics")
	}
}

func TestNeuroPilotOnlySupportedModel(t *testing.T) {
	m := smallCNN()
	cm, err := BuildNeuroPilotOnly(m, nil, []soc.DeviceKind{soc.KindCPU, soc.KindAPU})
	if err != nil {
		t.Fatalf("NeuroPilot-only build failed on a fully supported model: %v", err)
	}
	in := input(tensor.Shape{1, 32, 32, 16}, 14)
	prof := soc.NewProfile()
	outs, err := cm.Execute([]*tensor.Tensor{in}, prof)
	if err != nil {
		t.Fatal(err)
	}
	_, ref := runModule(t, smallCNN(), BuildOptions{OptLevel: 3}, in)
	if !tensor.AllClose(outs[0], ref, 1e-4, 1e-4) {
		t.Errorf("NeuroPilot-only output differs, max %g", tensor.MaxAbsDiff(outs[0], ref))
	}
	if prof.Total() <= 0 {
		t.Error("no cost recorded")
	}
}

func TestNeuroPilotOnlyUnsupportedModelHasNoStatistics(t *testing.T) {
	m := cnnWithUnsupported()
	_, err := BuildNeuroPilotOnly(m, nil, []soc.DeviceKind{soc.KindCPU, soc.KindAPU})
	if err == nil {
		t.Fatal("model with leaky_relu must not compile NeuroPilot-only")
	}
	if !IsNoStatistics(err) {
		t.Errorf("error should classify as no-statistics, got: %v", err)
	}
}

func TestNeuroPilotAPUOnlyRejectsCPUOnlyOps(t *testing.T) {
	// sigmoid is in the Neuron op set but not APU-supported.
	data := relay.NewVar("d", relay.TType(tensor.Float32, 1, 4))
	sg := relay.NewCall(relay.OpSigmoid, []relay.Expr{data}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data}, sg))
	_, err := BuildNeuroPilotOnly(m, nil, []soc.DeviceKind{soc.KindAPU})
	if err == nil {
		t.Fatal("sigmoid on APU-only must fail to compile")
	}
	var ue *neuron.UnsupportedError
	if !asUnsupported(err, &ue) {
		t.Errorf("want UnsupportedError, got %v", err)
	}
	if !IsNoStatistics(err) {
		t.Error("APU-only failure should classify as no-statistics")
	}
}

func asUnsupported(err error, target **neuron.UnsupportedError) bool {
	for err != nil {
		if ue, ok := err.(*neuron.UnsupportedError); ok {
			*target = ue
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

func TestMissingInputError(t *testing.T) {
	lib, err := Build(smallCNN(), BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	gm := NewGraphModule(lib)
	if err := gm.Run(); err == nil {
		t.Error("Run without inputs must fail")
	}
}

func TestWrongShapeInputError(t *testing.T) {
	lib, err := Build(smallCNN(), BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	gm := NewGraphModule(lib)
	gm.SetInput("data", tensor.New(tensor.Float32, tensor.Shape{1, 8, 8, 3}))
	if err := gm.Run(); err == nil {
		t.Error("Run with wrong input shape must fail")
	}
}

func TestAPUOnlyBYOCUsesOnlyAPUForRegions(t *testing.T) {
	in := input(tensor.Shape{1, 32, 32, 16}, 15)
	gm, _ := runModule(t, smallCNN(), BuildOptions{
		OptLevel: 3, UseNIR: true, NIRDevices: []soc.DeviceKind{soc.KindAPU},
	}, in)
	prof := gm.LastProfile()
	if prof.Launches[soc.KindAPU] == 0 {
		t.Error("APU-targeted BYOC never used the APU")
	}
	if prof.DMATime <= 0 {
		t.Error("APU execution must charge DMA for boundary crossings")
	}
}

func TestRegionMergeAblation(t *testing.T) {
	// Without region merging every supported op pays its own subgraph
	// boundary — the anti-spoofing pathology. It must be slower.
	in := input(tensor.Shape{1, 32, 32, 16}, 16)
	merged, _ := runModule(t, smallCNN(), BuildOptions{OptLevel: 3, UseNIR: true}, in)
	unmerged, _ := runModule(t, smallCNN(), BuildOptions{
		OptLevel: 3, UseNIR: true,
		Partition: mkPartition(false),
	}, in)
	mp, up := merged.LastProfile(), unmerged.LastProfile()
	if up.Subgraphs <= mp.Subgraphs {
		t.Errorf("unmerged should have more subgraphs: %d vs %d", up.Subgraphs, mp.Subgraphs)
	}
	if up.Total() <= mp.Total() {
		t.Errorf("unmerged (%s) should be slower than merged (%s)", up.Total(), mp.Total())
	}
	// And identical numerics.
	if !tensor.AllClose(merged.MustOutput(0), unmerged.MustOutput(0), 1e-4, 1e-4) {
		t.Error("region merging changed numerics")
	}
}

func mkPartition(merge bool) passes.PartitionOptions {
	return passes.PartitionOptions{MergeRegions: merge, MinRegionSize: 1}
}

func TestExportLoadRoundTrip(t *testing.T) {
	in := input(tensor.Shape{1, 32, 32, 16}, 20)
	gm, ref := runModule(t, smallCNN(), BuildOptions{OptLevel: 3, UseNIR: true}, in)

	var buf bytes.Buffer
	if err := gm.Lib().ExportLibrary(&buf); err != nil {
		t.Fatalf("export: %v", err)
	}
	loaded, err := LoadLibrary(&buf, nil)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	gm2 := NewGraphModule(loaded)
	gm2.SetInput(gm2.InputNames()[0], in)
	if err := gm2.Run(); err != nil {
		t.Fatalf("run loaded: %v", err)
	}
	got := gm2.MustOutput(0)
	if !tensor.AllClose(got, ref, 1e-6, 1e-6) {
		t.Errorf("loaded artifact output differs, max %g", tensor.MaxAbsDiff(got, ref))
	}
	// External plans survive the round trip.
	if len(loaded.External) != len(gm.Lib().External) {
		t.Errorf("externals: %d vs %d", len(loaded.External), len(gm.Lib().External))
	}
	// Simulated cost identical on both sides.
	if gm2.LastProfile().Total() != gm.LastProfile().Total() {
		t.Errorf("cost changed across export/load: %s vs %s",
			gm2.LastProfile().Total(), gm.LastProfile().Total())
	}
}

func TestLoadLibraryRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("definitely not an artifact")
	if _, err := LoadLibrary(&buf, nil); err == nil {
		t.Error("garbage accepted as artifact")
	}
}

// newQuantBuilder assembles a small quantized relay module directly (a
// qnn.conv2d chain like the tflite importer emits) plus a matching input.
type quantFixture struct {
	mod   *relay.Module
	input *tensor.Tensor
}

func newQuantBuilder(t *testing.T) quantFixture {
	t.Helper()
	inQ := tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0}
	wQ := tensor.QuantParams{Scale: 0.01, ZeroPoint: 128}
	outQ := tensor.QuantParams{Scale: 8.0 / 255, ZeroPoint: 128}
	data := relay.NewVar("data", relay.QTType(tensor.UInt8, inQ, 1, 16, 16, 3))
	wf := tensor.New(tensor.Float32, tensor.Shape{8, 3, 3, 3})
	wf.FillUniform(tensor.NewRNG(21), -0.5, 0.5)
	conv := relay.NewCall(relay.OpQnnConv2D, []relay.Expr{data, relay.Const(wf.QuantizeTo(tensor.UInt8, wQ))},
		relay.Attrs{"padding": []int{1, 1},
			"input_scale": inQ.Scale, "input_zero_point": int(inQ.ZeroPoint),
			"kernel_scale": wQ.Scale, "kernel_zero_point": int(wQ.ZeroPoint)})
	bias := relay.NewCall(relay.OpBiasAdd,
		[]relay.Expr{conv, relay.Const(tensor.New(tensor.Int32, tensor.Shape{8}))}, nil)
	rq := relay.NewCall(relay.OpQnnRequantize, []relay.Expr{bias}, relay.Attrs{
		"input_scale": inQ.Scale * wQ.Scale, "input_zero_point": 0,
		"output_scale": outQ.Scale, "output_zero_point": int(outQ.ZeroPoint), "out_dtype": "uint8"})
	act := relay.NewCall(relay.OpClip, []relay.Expr{rq}, relay.Attrs{"a_min": 0.0, "a_max": 6.0})
	deq := relay.NewCall(relay.OpQnnDequantize, []relay.Expr{act}, relay.Attrs{
		"input_scale": outQ.Scale, "input_zero_point": int(outQ.ZeroPoint)})
	mod := relay.NewModule(relay.NewFunc([]*relay.Var{data}, deq))

	in := tensor.New(tensor.UInt8, tensor.Shape{1, 16, 16, 3})
	in.Quant = &inQ
	rng := tensor.NewRNG(8)
	raw := in.U8()
	for i := range raw {
		raw[i] = uint8(rng.Intn(256))
	}
	return quantFixture{mod: mod, input: in}
}

// Fused quantized models (bool attrs, requant params) must survive the
// artifact round trip with identical numerics and cost.
func TestExportLoadQuantizedFused(t *testing.T) {
	b := newQuantBuilder(t)
	mod := b.mod
	lib, err := Build(mod, BuildOptions{OptLevel: 3, UseNIR: true})
	if err != nil {
		t.Fatal(err)
	}
	gm := NewGraphModule(lib)
	gm.SetInput(gm.InputNames()[0], b.input)
	if err := gm.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lib.ExportLibrary(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadLibrary(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	gm2 := NewGraphModule(loaded)
	gm2.SetInput(gm2.InputNames()[0], b.input)
	if err := gm2.Run(); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(gm2.MustOutput(0), gm.MustOutput(0), 0, 0) {
		t.Error("quantized artifact round trip changed outputs")
	}
	if gm2.LastProfile().Total() != gm.LastProfile().Total() {
		t.Error("quantized artifact round trip changed simulated cost")
	}
}

func TestLoadLibraryCorruptGraph(t *testing.T) {
	// Valid magic + bogus JSON length / content must fail cleanly.
	lib, err := Build(smallCNN(), BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := lib.ExportLibrary(&buf); err != nil {
		t.Fatal(err)
	}
	blob := buf.Bytes()
	// Smash the opening brace of the JSON section (byte 10: magic is 6
	// bytes, length 4 bytes).
	mut := append([]byte(nil), blob...)
	mut[10] = '!'
	if _, err := LoadLibrary(bytes.NewReader(mut), nil); err == nil {
		t.Error("corrupt artifact accepted")
	}
	// Absurd JSON length must fail rather than over-read.
	mut2 := append([]byte(nil), blob...)
	mut2[6], mut2[7], mut2[8], mut2[9] = 0xff, 0xff, 0xff, 0x7f
	if _, err := LoadLibrary(bytes.NewReader(mut2), nil); err == nil {
		t.Error("oversized length accepted")
	}
	// Truncate mid-constants.
	if _, err := LoadLibrary(bytes.NewReader(blob[:len(blob)/2]), nil); err == nil {
		t.Error("truncated artifact accepted")
	}
}
