package runtime_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/models"
	"repro/internal/runtime"
)

// planSummary renders everything the fleet's artifact cache depends on being
// stable across an export/load cycle: the lowered ExecPlan description and,
// per external NIR region, the per-operation device placement.
func planSummary(t *testing.T, lib *runtime.Lib) string {
	t.Helper()
	var b bytes.Buffer
	plan, err := lib.Plan()
	if err != nil {
		fmt.Fprintf(&b, "plan error: %v\n", err)
	} else {
		fmt.Fprintf(&b, "%s\n", plan.String())
	}
	regions := make([]string, 0, len(lib.External))
	for name := range lib.External {
		regions = append(regions, name)
	}
	sort.Strings(regions)
	for _, name := range regions {
		cm := lib.External[name]
		fmt.Fprintf(&b, "region %s devices=%v plan=%v\n", name, cm.Devices, cm.Plan)
	}
	return b.String()
}

// TestZooExportLoadRoundTrip drives every zoo model through
// ExportLibrary → LoadLibrary and demands the loaded library be
// indistinguishable from the built one: identical plan summaries (main
// ExecPlan and external-region device placements) and bitwise-identical
// outputs for the same deterministic input — the invariant the fleet's
// content-addressed artifact cache rests on.
func TestZooExportLoadRoundTrip(t *testing.T) {
	for _, name := range models.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, err := models.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			m, err := spec.Build(models.SizeLite)
			if err != nil {
				t.Fatalf("build module: %v", err)
			}
			lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
			if err != nil {
				t.Fatalf("build lib: %v", err)
			}
			var buf bytes.Buffer
			if err := lib.ExportLibrary(&buf); err != nil {
				t.Fatalf("export: %v", err)
			}
			loaded, err := runtime.LoadLibrary(bytes.NewReader(buf.Bytes()), nil)
			if err != nil {
				t.Fatalf("load: %v", err)
			}

			if got, want := planSummary(t, loaded), planSummary(t, lib); got != want {
				t.Errorf("plan summary changed across export/load:\nbuilt:\n%s\nloaded:\n%s", want, got)
			}

			gmA := runtime.NewGraphModule(lib)
			gmB := runtime.NewGraphModule(loaded)
			in := models.RandomInput(m, 42)
			inName := gmA.InputNames()[0]
			for _, gm := range []*runtime.GraphModule{gmA, gmB} {
				gm.SetInput(inName, in)
				if err := gm.Run(); err != nil {
					t.Fatalf("run: %v", err)
				}
			}
			if gmA.NumOutputs() != gmB.NumOutputs() {
				t.Fatalf("output count %d != %d", gmA.NumOutputs(), gmB.NumOutputs())
			}
			for o := 0; o < gmA.NumOutputs(); o++ {
				a, b := gmA.MustOutput(o), gmB.MustOutput(o)
				if !a.Shape.Equal(b.Shape) || a.DType != b.DType {
					t.Fatalf("output %d: shape/dtype mismatch (%v %v vs %v %v)", o, a.Shape, a.DType, b.Shape, b.DType)
				}
				for i := 0; i < a.Elems(); i++ {
					if a.GetF(i) != b.GetF(i) {
						t.Fatalf("output %d elem %d: built %v != loaded %v (not bitwise identical)",
							o, i, a.GetF(i), b.GetF(i))
					}
				}
			}
		})
	}
}
