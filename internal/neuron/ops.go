package neuron

import (
	"repro/internal/soc"
)

// OpCode enumerates the Neuron IR operations (an NNAPI-style catalogue).
type OpCode int

const (
	Conv2D OpCode = iota
	DepthwiseConv2D
	FullyConnected
	MaxPool2D
	AveragePool2D
	GlobalAveragePool2D
	ReLU
	Clamp // relu1/relu6 and general clip
	Logistic
	TanhOp
	Softmax
	Add
	Sub
	Mul
	Max
	Min
	Concatenation
	Reshape
	Transpose
	Squeeze
	ExpandDims
	Pad
	ResizeNearest
	Quantize
	Dequantize
	Requantize
	BiasAdd
	numOpCodes // sentinel
)

var opCodeNames = [...]string{
	Conv2D:              "CONV_2D",
	DepthwiseConv2D:     "DEPTHWISE_CONV_2D",
	FullyConnected:      "FULLY_CONNECTED",
	MaxPool2D:           "MAX_POOL_2D",
	AveragePool2D:       "AVERAGE_POOL_2D",
	GlobalAveragePool2D: "GLOBAL_AVERAGE_POOL_2D",
	ReLU:                "RELU",
	Clamp:               "CLAMP",
	Logistic:            "LOGISTIC",
	TanhOp:              "TANH",
	Softmax:             "SOFTMAX",
	Add:                 "ADD",
	Sub:                 "SUB",
	Mul:                 "MUL",
	Max:                 "MAXIMUM",
	Min:                 "MINIMUM",
	Concatenation:       "CONCATENATION",
	Reshape:             "RESHAPE",
	Transpose:           "TRANSPOSE",
	Squeeze:             "SQUEEZE",
	ExpandDims:          "EXPAND_DIMS",
	Pad:                 "PAD",
	ResizeNearest:       "RESIZE_NEAREST_NEIGHBOR",
	Quantize:            "QUANTIZE",
	Dequantize:          "DEQUANTIZE",
	Requantize:          "REQUANTIZE",
	BiasAdd:             "BIAS_ADD",
}

func (c OpCode) String() string {
	if c >= 0 && int(c) < len(opCodeNames) {
		return opCodeNames[c]
	}
	return "OP_UNKNOWN"
}

// KnownOpCode reports whether c is a valid opcode.
func KnownOpCode(c OpCode) bool { return c >= 0 && c < numOpCodes }

// OpCodes returns every opcode in the catalogue, in order; the registry
// lint walks it to cross-check kernel mappings and device coverage.
func OpCodes() []OpCode {
	out := make([]OpCode, 0, int(numOpCodes))
	for c := OpCode(0); c < numOpCodes; c++ {
		out = append(out, c)
	}
	return out
}

// gpuUnsupported lists opcodes the GPU path cannot execute: the Mali GPU
// delegate has no integer-quantization pipeline, so the quantized ops stay
// off it (the planner additionally keeps quantized *work* off the GPU).
var gpuUnsupported = map[OpCode]bool{
	Quantize:   true,
	Dequantize: true,
	Requantize: true,
}

// apuUnsupported lists opcodes the AI accelerator cannot execute; the
// Execution Planner must place these on the Neuron CPU backend. The set
// mirrors the paper's observation that NeuroPilot's accelerator covers fewer
// operations than its CPU path.
var apuUnsupported = map[OpCode]bool{
	Logistic:  true,
	TanhOp:    true,
	Transpose: true,
}

// SupportedOn reports whether the opcode can run on the given device under
// the NeuroPilot runtime. The Neuron CPU backend implements the whole
// catalogue; the APU and GPU implement the subsets above. The paper's
// experiments use CPU and APU only; the GPU path is an extension
// (NeuroPilot does list the mobile GPU among its backends, §5).
func SupportedOn(c OpCode, dev soc.DeviceKind) bool {
	if !KnownOpCode(c) {
		return false
	}
	switch dev {
	case soc.KindCPU:
		return true
	case soc.KindAPU:
		return !apuUnsupported[c]
	case soc.KindGPU:
		return !gpuUnsupported[c]
	default:
		return false
	}
}

// KernelFor maps an opcode to the reference kernel (relay op name in the
// shared TOPI inventory) used to compute its numerics. The quantized flag
// selects the integer path where the kernel differs.
func KernelFor(c OpCode, quantized bool) string {
	switch c {
	case Conv2D, DepthwiseConv2D:
		if quantized {
			return "qnn.conv2d"
		}
		return "nn.conv2d"
	case FullyConnected:
		if quantized {
			return "qnn.dense"
		}
		return "nn.dense"
	case MaxPool2D:
		return "nn.max_pool2d"
	case AveragePool2D:
		return "nn.avg_pool2d"
	case GlobalAveragePool2D:
		return "nn.global_avg_pool2d"
	case ReLU:
		return "nn.relu"
	case Clamp:
		return "clip"
	case Logistic:
		return "sigmoid"
	case TanhOp:
		return "tanh"
	case Softmax:
		return "nn.softmax"
	case Add:
		if quantized {
			return "qnn.add"
		}
		return "add"
	case Sub:
		return "subtract"
	case Mul:
		return "multiply"
	case Max:
		return "maximum"
	case Min:
		return "minimum"
	case Concatenation:
		if quantized {
			return "qnn.concatenate"
		}
		return "concatenate"
	case Reshape:
		return "reshape"
	case Transpose:
		return "transpose"
	case Squeeze:
		return "squeeze"
	case ExpandDims:
		return "expand_dims"
	case Pad:
		return "nn.pad"
	case ResizeNearest:
		return "nn.upsampling"
	case Quantize:
		return "qnn.quantize"
	case Dequantize:
		return "qnn.dequantize"
	case Requantize:
		return "qnn.requantize"
	case BiasAdd:
		return "nn.bias_add"
	}
	return ""
}
