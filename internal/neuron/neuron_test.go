package neuron

import (
	"strings"
	"testing"

	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
)

func f32Type(shape ...int) OperandType {
	return OperandType{Shape: tensor.Shape(shape), DType: tensor.Float32}
}

// buildTinyModel: input -> CONV_2D -> RELU -> output.
func buildTinyModel(t *testing.T) *Model {
	t.Helper()
	m := NewModel("tiny")
	in := m.AddOperand("data", f32Type(1, 8, 8, 3), nil)
	w := tensor.New(tensor.Float32, tensor.Shape{4, 3, 3, 3})
	w.FillUniform(tensor.NewRNG(1), -0.5, 0.5)
	wi := m.AddOperand("w", f32Type(4, 3, 3, 3), w)
	conv := m.AddOperand("conv", f32Type(1, 8, 8, 4), nil)
	out := m.AddOperand("act", f32Type(1, 8, 8, 4), nil)
	m.AddOperation(Conv2D, []int{in, wi}, []int{conv}, relay.Attrs{"padding": []int{1, 1}})
	m.AddOperation(ReLU, []int{conv}, []int{out}, nil)
	m.Inputs = []int{in}
	m.Outputs = []int{out}
	return m
}

func TestModelValidateOK(t *testing.T) {
	if err := buildTinyModel(t).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsQuantizedOperandWithoutParams(t *testing.T) {
	m := NewModel("bad")
	in := m.AddOperand("q", OperandType{Shape: tensor.Shape{4}, DType: tensor.UInt8}, nil)
	m.Inputs = []int{in}
	m.Outputs = []int{in}
	err := m.Validate()
	if err == nil {
		t.Fatal("quantized operand without params must be rejected")
	}
	if !strings.Contains(err.Error(), "tensor-oriented") {
		t.Errorf("error should explain the tensor-oriented invariant: %v", err)
	}
}

func TestValidateRejectsUseBeforeDef(t *testing.T) {
	m := NewModel("bad")
	in := m.AddOperand("in", f32Type(4), nil)
	mid := m.AddOperand("mid", f32Type(4), nil)
	out := m.AddOperand("out", f32Type(4), nil)
	m.Inputs = []int{in}
	m.Outputs = []int{out}
	// Uses mid before it is produced.
	m.AddOperation(ReLU, []int{mid}, []int{out}, nil)
	m.AddOperation(ReLU, []int{in}, []int{mid}, nil)
	if err := m.Validate(); err == nil {
		t.Error("topological violation must be rejected")
	}
}

func TestValidateRejectsConstInput(t *testing.T) {
	m := NewModel("bad")
	c := m.AddOperand("c", f32Type(1), tensor.Scalar(1))
	m.Inputs = []int{c}
	m.Outputs = []int{c}
	if err := m.Validate(); err == nil {
		t.Error("constant model input must be rejected")
	}
}

func TestValidateRejectsWritingConst(t *testing.T) {
	m := NewModel("bad")
	in := m.AddOperand("in", f32Type(1), nil)
	c := m.AddOperand("c", f32Type(1), tensor.Scalar(1))
	m.Inputs = []int{in}
	m.Outputs = []int{c}
	m.AddOperation(ReLU, []int{in}, []int{c}, nil)
	if err := m.Validate(); err == nil {
		t.Error("writing a constant operand must be rejected")
	}
}

func TestSupportedOnSets(t *testing.T) {
	// CPU implements the whole catalogue.
	for c := OpCode(0); c < numOpCodes; c++ {
		if !SupportedOn(c, soc.KindCPU) {
			t.Errorf("%s should be CPU-supported", c)
		}
	}
	// APU gaps.
	for _, c := range []OpCode{Logistic, TanhOp, Transpose} {
		if SupportedOn(c, soc.KindAPU) {
			t.Errorf("%s should not be APU-supported", c)
		}
	}
	if !SupportedOn(Conv2D, soc.KindAPU) || !SupportedOn(Softmax, soc.KindAPU) {
		t.Error("conv2d/softmax must be APU-supported")
	}
	// GPU extension: float ops run, the quantization pipeline does not.
	if !SupportedOn(Conv2D, soc.KindGPU) || !SupportedOn(Logistic, soc.KindGPU) {
		t.Error("float ops must be GPU-supported (extension)")
	}
	for _, c := range []OpCode{Quantize, Dequantize, Requantize} {
		if SupportedOn(c, soc.KindGPU) {
			t.Errorf("%s must not be GPU-supported", c)
		}
	}
	if SupportedOn(numOpCodes, soc.KindCPU) {
		t.Error("unknown opcode must not be supported")
	}
}

func TestCompilePlansLargeConvOnAPU(t *testing.T) {
	// A mobile-scale conv should beat the APU overheads.
	m := NewModel("big")
	in := m.AddOperand("data", f32Type(1, 56, 56, 64), nil)
	w := tensor.New(tensor.Float32, tensor.Shape{64, 3, 3, 64})
	wi := m.AddOperand("w", f32Type(64, 3, 3, 64), w)
	out := m.AddOperand("out", f32Type(1, 56, 56, 64), nil)
	m.AddOperation(Conv2D, []int{in, wi}, []int{out}, relay.Attrs{"padding": []int{1, 1}})
	m.Inputs = []int{in}
	m.Outputs = []int{out}
	sc := soc.NewDimensity800()
	cm, err := Compile(m, sc, []soc.DeviceKind{soc.KindCPU, soc.KindAPU})
	if err != nil {
		t.Fatal(err)
	}
	if cm.Plan[0] != soc.KindAPU {
		t.Errorf("56x56x64 conv planned on %s, want apu", cm.Plan[0])
	}
}

func TestCompileFailsOnEmptyDeviceIntersection(t *testing.T) {
	m := NewModel("sig")
	in := m.AddOperand("in", f32Type(4), nil)
	out := m.AddOperand("out", f32Type(4), nil)
	m.AddOperation(Logistic, []int{in}, []int{out}, nil)
	m.Inputs = []int{in}
	m.Outputs = []int{out}
	_, err := Compile(m, soc.NewDimensity800(), []soc.DeviceKind{soc.KindAPU})
	if err == nil {
		t.Fatal("LOGISTIC on APU-only must fail")
	}
	ue, ok := err.(*UnsupportedError)
	if !ok {
		t.Fatalf("want *UnsupportedError, got %T: %v", err, err)
	}
	if ue.Op != Logistic {
		t.Errorf("UnsupportedError.Op = %s", ue.Op)
	}
}

func TestExecuteTinyModel(t *testing.T) {
	m := buildTinyModel(t)
	sc := soc.NewDimensity800()
	cm, err := Compile(m, sc, []soc.DeviceKind{soc.KindCPU})
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.New(tensor.Float32, tensor.Shape{1, 8, 8, 3})
	in.FillUniform(tensor.NewRNG(2), -1, 1)
	prof := soc.NewProfile()
	outs, err := cm.Execute([]*tensor.Tensor{in}, prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || !outs[0].Shape.Equal(tensor.Shape{1, 8, 8, 4}) {
		t.Fatalf("bad outputs: %v", outs)
	}
	for i := 0; i < outs[0].Elems(); i++ {
		if outs[0].GetF(i) < 0 {
			t.Fatal("relu output negative")
		}
	}
	// Operation fusion folds the ReLU into the convolution: one launch.
	if prof.Launches[soc.KindCPU] != 1 {
		t.Errorf("expected 1 CPU launch after fusion, got %d", prof.Launches[soc.KindCPU])
	}
}

func TestExecuteChargesDMAAcrossBoundary(t *testing.T) {
	// Conv on APU then Logistic (CPU-only) forces a crossing.
	m := NewModel("mix")
	in := m.AddOperand("data", f32Type(1, 56, 56, 64), nil)
	w := tensor.New(tensor.Float32, tensor.Shape{64, 3, 3, 64})
	wi := m.AddOperand("w", f32Type(64, 3, 3, 64), w)
	conv := m.AddOperand("conv", f32Type(1, 56, 56, 64), nil)
	out := m.AddOperand("out", f32Type(1, 56, 56, 64), nil)
	m.AddOperation(Conv2D, []int{in, wi}, []int{conv}, relay.Attrs{"padding": []int{1, 1}})
	m.AddOperation(Logistic, []int{conv}, []int{out}, nil)
	m.Inputs = []int{in}
	m.Outputs = []int{out}
	sc := soc.NewDimensity800()
	cm, err := Compile(m, sc, []soc.DeviceKind{soc.KindCPU, soc.KindAPU})
	if err != nil {
		t.Fatal(err)
	}
	prof := soc.NewProfile()
	if _, err := cm.Estimate(prof), error(nil); err != nil {
		t.Fatal(err)
	}
	if cm.Plan[0] != soc.KindAPU || cm.Plan[1] != soc.KindCPU {
		t.Fatalf("plan = %v, want [apu cpu]", cm.Plan)
	}
	if prof.DMATime <= 0 {
		t.Error("boundary crossing must charge DMA")
	}
}

func TestEstimateMatchesExecuteCosts(t *testing.T) {
	m := buildTinyModel(t)
	sc := soc.NewDimensity800()
	cm, err := Compile(m, sc, []soc.DeviceKind{soc.KindCPU, soc.KindAPU})
	if err != nil {
		t.Fatal(err)
	}
	est := soc.NewProfile()
	cm.Estimate(est)
	run := soc.NewProfile()
	in := tensor.New(tensor.Float32, tensor.Shape{1, 8, 8, 3})
	if _, err := cm.Execute([]*tensor.Tensor{in}, run); err != nil {
		t.Fatal(err)
	}
	// Static estimation and instrumented execution must charge identical
	// simulated cost (same plan, same work extraction).
	if est.Total() != run.Total() {
		t.Errorf("estimate %s != execute %s", est.Total(), run.Total())
	}
}

func TestOpCodeStrings(t *testing.T) {
	if Conv2D.String() != "CONV_2D" || Requantize.String() != "REQUANTIZE" {
		t.Error("opcode names wrong")
	}
	if OpCode(999).String() != "OP_UNKNOWN" {
		t.Error("unknown opcode name")
	}
}
