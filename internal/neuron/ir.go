// Package neuron simulates the MediaTek NeuroPilot stack the paper targets:
// a tensor-oriented IR (operand table + operation list, NNAPI-style), a
// compiler with an Execution Planner that assigns operations to backend
// devices (mobile CPU / APU), and a runtime that executes the compiled plan
// on the simulated SoC.
//
// The property that drives the paper's §3.3 QNN augmentation lives here:
// *every* quantized operand must carry its own scale/zero-point
// (Model.Validate enforces it), whereas relay QNN keeps those parameters on
// operator attributes. The BYOC converter (internal/nir) bridges the two.
package neuron

import (
	"fmt"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// OperandType describes a Neuron tensor: shape, element type and — for
// quantized element types, mandatorily — quantization parameters.
type OperandType struct {
	Shape tensor.Shape
	DType tensor.DType
	Quant *tensor.QuantParams
}

func (t OperandType) String() string {
	q := ""
	if t.Quant != nil {
		q = fmt.Sprintf(" q(%g,%d)", t.Quant.Scale, t.Quant.ZeroPoint)
	}
	return fmt.Sprintf("%s%s%s", t.DType, t.Shape, q)
}

// Operand is one entry of the model's operand table.
type Operand struct {
	Index int
	Name  string
	Type  OperandType
	// Const holds the tensor value for weight/bias operands baked into the
	// model; nil for runtime-fed operands.
	Const *tensor.Tensor
}

// IsConst reports whether the operand is a compile-time constant.
func (o *Operand) IsConst() bool { return o.Const != nil }

// Operation applies one OpCode to input operands producing output operands.
// Attrs uses the same key space as relay attributes (strides, padding, ...);
// in the real stack these are encoded operand-side, but sharing the schema
// keeps the simulated kernels honest without duplicating every legalization.
type Operation struct {
	Code    OpCode
	Inputs  []int
	Outputs []int
	Attrs   relay.Attrs
}

// Model is a complete Neuron IR module: operand table, operation list in
// topological order, and the designated model inputs/outputs.
type Model struct {
	Name       string
	Operands   []Operand
	Operations []Operation
	Inputs     []int
	Outputs    []int
}

// NewModel returns an empty model.
func NewModel(name string) *Model { return &Model{Name: name} }

// AddOperand appends an operand and returns its index.
func (m *Model) AddOperand(name string, ty OperandType, value *tensor.Tensor) int {
	idx := len(m.Operands)
	m.Operands = append(m.Operands, Operand{Index: idx, Name: name, Type: ty, Const: value})
	return idx
}

// AddOperation appends an operation; inputs must already exist.
func (m *Model) AddOperation(code OpCode, inputs, outputs []int, attrs relay.Attrs) {
	if attrs == nil {
		attrs = relay.Attrs{}
	}
	m.Operations = append(m.Operations, Operation{Code: code, Inputs: inputs, Outputs: outputs, Attrs: attrs})
}

// Validate checks structural well-formedness and the tensor-oriented
// quantization invariant: every operand with a quantized element type (and
// every int32 accumulator feeding a requantize) must carry QuantParams.
func (m *Model) Validate() error {
	n := len(m.Operands)
	inBounds := func(idx int) bool { return idx >= 0 && idx < n }
	for _, i := range m.Inputs {
		if !inBounds(i) {
			return fmt.Errorf("neuron: model %q input operand %d out of range", m.Name, i)
		}
		if m.Operands[i].IsConst() {
			return fmt.Errorf("neuron: model %q input operand %d is constant", m.Name, i)
		}
	}
	for _, i := range m.Outputs {
		if !inBounds(i) {
			return fmt.Errorf("neuron: model %q output operand %d out of range", m.Name, i)
		}
	}
	defined := map[int]bool{}
	for _, i := range m.Inputs {
		defined[i] = true
	}
	for i, od := range m.Operands {
		if od.IsConst() {
			if !od.Const.Shape.Equal(od.Type.Shape) {
				return fmt.Errorf("neuron: operand %d (%s) constant shape %s != declared %s",
					i, od.Name, od.Const.Shape, od.Type.Shape)
			}
			defined[i] = true
		}
		if od.Type.DType.IsQuantized() && od.Type.Quant == nil {
			return fmt.Errorf("neuron: operand %d (%s) is %s but has no quantization parameters — "+
				"Neuron IR is tensor-oriented, params must be carried on every tensor",
				i, od.Name, od.Type.DType)
		}
	}
	for oi, op := range m.Operations {
		if !KnownOpCode(op.Code) {
			return fmt.Errorf("neuron: operation %d has unknown opcode %d", oi, int(op.Code))
		}
		for _, in := range op.Inputs {
			if !inBounds(in) {
				return fmt.Errorf("neuron: operation %d (%s) input %d out of range", oi, op.Code, in)
			}
			if !defined[in] {
				return fmt.Errorf("neuron: operation %d (%s) uses operand %d before definition "+
					"(operations must be topologically ordered)", oi, op.Code, in)
			}
		}
		for _, out := range op.Outputs {
			if !inBounds(out) {
				return fmt.Errorf("neuron: operation %d (%s) output %d out of range", oi, op.Code, out)
			}
			if m.Operands[out].IsConst() {
				return fmt.Errorf("neuron: operation %d (%s) writes constant operand %d", oi, op.Code, out)
			}
			defined[out] = true
		}
	}
	for _, i := range m.Outputs {
		if !defined[i] {
			return fmt.Errorf("neuron: model output %d is never produced", i)
		}
	}
	return nil
}

// OpCounts returns a histogram of opcodes, used by tests and debug dumps.
func (m *Model) OpCounts() map[OpCode]int {
	h := map[OpCode]int{}
	for _, op := range m.Operations {
		h[op.Code]++
	}
	return h
}
