package neuron

import (
	"repro/internal/soc"
)

// Operation fusion — the Neuron compiler optimization that mirrors NNAPI's
// operation semantics: a real ANEURALNETWORKS_CONV_2D takes the bias as an
// input, carries the output quantization, and applies a fused activation,
// all in one operation. The converter emits the unfused relay-shaped chain
// (CONV_2D → BIAS_ADD → REQUANTIZE → CLAMP); this pass collapses it so each
// layer costs one launch on its device — and gives the ablation benchmarks
// a measurable knob.

// FusedActivationAttr is the attribute key holding "relu" or "relu6".
const FusedActivationAttr = "fused_activation"

// FusedRequantAttr marks an operation that must requantize its accumulator
// with the requant_* attributes.
const FusedRequantAttr = "fused_requantize"

// fusable anchors: operations that can absorb bias/requantize/activation.
func isFusionAnchor(c OpCode) bool {
	switch c {
	case Conv2D, DepthwiseConv2D, FullyConnected, Add:
		return true
	}
	return false
}

// FuseOperations rewrites the model in place, returning the number of
// operations absorbed. Only single-consumer intermediate values that are not
// model outputs are folded, so observable behaviour is unchanged.
func FuseOperations(m *Model) int {
	consumers := map[int]int{}
	for _, op := range m.Operations {
		for _, in := range op.Inputs {
			consumers[in]++
		}
	}
	isOutput := map[int]bool{}
	for _, o := range m.Outputs {
		isOutput[o] = true
	}
	// producerOf[operand] = index into m.Operations.
	producerOf := map[int]int{}
	for i, op := range m.Operations {
		for _, out := range op.Outputs {
			producerOf[out] = i
		}
	}

	absorbed := map[int]bool{} // operation indices removed
	fused := 0
	for i := range m.Operations {
		anchor := &m.Operations[i]
		if absorbed[i] || !isFusionAnchor(anchor.Code) {
			continue
		}
		for {
			out := anchor.Outputs[0]
			if isOutput[out] || consumers[out] != 1 {
				break
			}
			nextIdx, ok := nextConsumer(m, producerOf, out, i)
			if !ok || absorbed[nextIdx] {
				break
			}
			next := &m.Operations[nextIdx]
			switch {
			case next.Code == BiasAdd && anchor.Code != Add && len(anchor.Inputs) == 2 &&
				next.Inputs[0] == out && m.Operands[next.Inputs[1]].IsConst():
				// Absorb the bias as a third input (NNAPI layout).
				anchor.Inputs = append(anchor.Inputs, next.Inputs[1])
			case next.Code == Requantize && next.Inputs[0] == out &&
				anchor.Attrs.Bool(FusedRequantAttr, false) == false:
				anchor.Attrs = anchor.Attrs.Clone()
				anchor.Attrs[FusedRequantAttr] = true
				for _, k := range []string{"input_scale", "input_zero_point",
					"output_scale", "output_zero_point", "out_dtype"} {
					if v, ok := next.Attrs[k]; ok {
						anchor.Attrs["requant_"+k] = v
					}
				}
			case isFusableActivation(next) && next.Inputs[0] == out &&
				anchor.Attrs.Str(FusedActivationAttr, "") == "":
				anchor.Attrs = anchor.Attrs.Clone()
				anchor.Attrs[FusedActivationAttr] = activationName(next)
			default:
				goto done
			}
			anchor.Outputs = next.Outputs
			absorbed[nextIdx] = true
			producerOf[anchor.Outputs[0]] = i
			fused++
			// A fused activation terminates the chain (nothing fuses after
			// an activation in NNAPI).
			if anchor.Attrs.Str(FusedActivationAttr, "") != "" {
				break
			}
		}
	done:
	}
	if fused == 0 {
		return 0
	}
	kept := m.Operations[:0]
	for i := range m.Operations {
		if !absorbed[i] {
			kept = append(kept, m.Operations[i])
		}
	}
	m.Operations = kept
	return fused
}

// nextConsumer finds the operation consuming the operand (its single
// consumer), scanning forward from the anchor.
func nextConsumer(m *Model, producerOf map[int]int, operand, after int) (int, bool) {
	for i := after + 1; i < len(m.Operations); i++ {
		for _, in := range m.Operations[i].Inputs {
			if in == operand {
				return i, true
			}
		}
	}
	return 0, false
}

func isFusableActivation(op *Operation) bool {
	switch op.Code {
	case ReLU:
		return true
	case Clamp:
		return op.Attrs.Float("a_min", -1) == 0 && op.Attrs.Float("a_max", -1) == 6
	}
	return false
}

func activationName(op *Operation) string {
	if op.Code == ReLU {
		return "relu"
	}
	return "relu6"
}

// fusedWork extends an anchor's work summary with the absorbed epilogue
// (bias + requant + activation are elementwise over the output).
func fusedWork(m *Model, op Operation) soc.Work {
	w := workOf(m, op)
	extra := int64(0)
	outElems := int64(m.Operands[op.Outputs[0]].Type.Shape.Elems())
	if len(op.Inputs) >= 3 && isFusionAnchor(op.Code) && op.Code != Add {
		extra += outElems
	}
	if op.Attrs.Bool(FusedRequantAttr, false) {
		extra += outElems
	}
	if op.Attrs.Str(FusedActivationAttr, "") != "" {
		extra += outElems
	}
	w.MACs += extra
	return w
}
