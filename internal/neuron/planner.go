package neuron

import (
	"fmt"
	"sync/atomic"

	"repro/internal/soc"
)

// The Execution Planner: NeuroPilot's compiler stage that assigns each
// operation to a backend device (paper §2.1). The planner greedily places
// every operation on the enabled device with the lowest estimated cost,
// charging DMA when a value crosses the CPU↔APU boundary.

// UnsupportedError reports a model that cannot compile for the enabled
// device set — the situation behind the missing NeuroPilot-only bars in the
// paper's Figures 4 and 6.
type UnsupportedError struct {
	Model   string
	Op      OpCode
	Devices []soc.DeviceKind
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("neuron: model %q contains %s, unsupported on enabled devices %v",
		e.Model, e.Op, e.Devices)
}

// CompiledModel is the output of the Neuron compiler: the model, the SoC it
// was compiled for, and the per-operation device plan.
type CompiledModel struct {
	Model   *Model
	SoC     *soc.SoC
	Devices []soc.DeviceKind
	// Plan[i] is the device executing Model.Operations[i].
	Plan []soc.DeviceKind
	// producerDev[operand] is the device whose memory holds the operand
	// after it is produced (model inputs and constants live in host memory).
	producerDev []soc.DeviceKind
	// execState caches the per-Execute working set (runtime.go) so
	// steady-state inference allocates only the escaping output tensors.
	// A single atomically-claimed slot, not a sync.Pool: the serving layer
	// gives each worker its own module instance, so Execute is effectively
	// single-threaded per CompiledModel, and a pool's GC eviction would
	// re-pay the full working-set allocation at unpredictable points
	// (breaking the allocation pins). Concurrent callers that lose the
	// claim build a fresh state and race benignly to put one back.
	execState atomic.Pointer[execState]
}

// efficiency returns the NeuroPilot engine efficiency on a device.
func efficiency(dev soc.DeviceKind) float64 {
	switch dev {
	case soc.KindAPU:
		return soc.EffNeuroPilotAPU
	case soc.KindGPU:
		return soc.EffNeuroPilotGPU
	default:
		return soc.EffNeuroPilotCPU
	}
}

// operandBytes returns the in-memory size of an operand.
func operandBytes(m *Model, idx int) int64 {
	t := m.Operands[idx].Type
	return int64(t.Shape.Elems()) * int64(t.DType.Size())
}

// workOf summarizes one operation for the cost model.
func workOf(m *Model, op Operation) soc.Work {
	out := m.Operands[op.Outputs[0]]
	outElems := int64(out.Type.Shape.Elems())
	w := soc.Work{OpName: op.Code.String()}
	w.Bytes = operandBytes(m, op.Outputs[0])
	for _, in := range op.Inputs {
		w.Bytes += operandBytes(m, in)
		if m.Operands[in].Type.DType.IsQuantized() {
			w.Quantized = true
		}
	}
	switch op.Code {
	case Conv2D, DepthwiseConv2D:
		wt := m.Operands[op.Inputs[1]].Type
		w.MACs = outElems * int64(wt.Shape[1]*wt.Shape[2]*wt.Shape[3])
	case FullyConnected:
		wt := m.Operands[op.Inputs[1]].Type
		w.MACs = outElems * int64(wt.Shape[1])
	case MaxPool2D, AveragePool2D:
		kh, kw := op.Attrs.IntPair("pool_size", 1)
		w.MACs = outElems * int64(kh*kw)
	case GlobalAveragePool2D:
		in := m.Operands[op.Inputs[0]].Type
		w.MACs = int64(in.Shape.Elems())
	case Softmax, Logistic, TanhOp:
		w.MACs = outElems * 8
	default:
		w.MACs = outElems
	}
	return w
}

// CompileOptions tunes the Neuron compiler.
type CompileOptions struct {
	// DisableOperationFusion keeps the converter's unfused op chains
	// (ablation hook; fusion is on by default, matching NNAPI semantics).
	DisableOperationFusion bool
}

// Compile validates the model and runs the Execution Planner for the enabled
// devices. It fails with *UnsupportedError when some operation has no home.
func Compile(m *Model, sc *soc.SoC, devices []soc.DeviceKind) (*CompiledModel, error) {
	return CompileWith(m, sc, devices, CompileOptions{})
}

// CompileWith is Compile with explicit options.
func CompileWith(m *Model, sc *soc.SoC, devices []soc.DeviceKind, opts CompileOptions) (*CompiledModel, error) {
	if !opts.DisableOperationFusion {
		FuseOperations(m)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(devices) == 0 {
		return nil, fmt.Errorf("neuron: no devices enabled for model %q", m.Name)
	}
	cm := &CompiledModel{
		Model:       m,
		SoC:         sc,
		Devices:     devices,
		Plan:        make([]soc.DeviceKind, len(m.Operations)),
		producerDev: make([]soc.DeviceKind, len(m.Operands)),
	}
	// Inputs and constants start in host (CPU) memory.
	for i := range cm.producerDev {
		cm.producerDev[i] = soc.KindCPU
	}
	for oi, op := range m.Operations {
		best := soc.DeviceKind(-1)
		var bestCost soc.Seconds
		for _, dev := range devices {
			cost, ok := PlacementCost(m, op, dev, sc, cm.producerDev)
			if !ok {
				continue
			}
			if best < 0 || cost < bestCost {
				best, bestCost = dev, cost
			}
		}
		if best < 0 {
			return nil, &UnsupportedError{Model: m.Name, Op: op.Code, Devices: devices}
		}
		cm.Plan[oi] = best
		for _, out := range op.Outputs {
			cm.producerDev[out] = best
		}
	}
	if err := cm.CheckPlan(); err != nil {
		return nil, fmt.Errorf("neuron: compiler produced an invalid plan: %w", err)
	}
	return cm, nil
}

// CheckPlan audits the execution plan against the model: one device per
// operation, drawn from the enabled set, whose supported-op set contains the
// operation. Compile runs it on its own output; deserialized artifacts and
// the IR verifier run it on externally supplied plans.
func (cm *CompiledModel) CheckPlan() error {
	if len(cm.Plan) != len(cm.Model.Operations) {
		return fmt.Errorf("neuron: plan length %d != %d operations", len(cm.Plan), len(cm.Model.Operations))
	}
	enabled := map[soc.DeviceKind]bool{}
	for _, d := range cm.Devices {
		enabled[d] = true
	}
	for i, dev := range cm.Plan {
		if !enabled[dev] {
			return fmt.Errorf("neuron: plan places operation %d (%s) on %s, which is not enabled (%v)",
				i, cm.Model.Operations[i].Code, dev, cm.Devices)
		}
		if !SupportedOn(cm.Model.Operations[i].Code, dev) {
			return fmt.Errorf("neuron: plan places %s on %s, which does not support it",
				cm.Model.Operations[i].Code, dev)
		}
	}
	return nil
}

// NewCompiledModel rehydrates a compiled model from a serialized artifact:
// the plan was computed at export time, so only validation happens here.
func NewCompiledModel(m *Model, sc *soc.SoC, devices []soc.DeviceKind, plan []soc.DeviceKind) (*CompiledModel, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	cm := &CompiledModel{Model: m, SoC: sc, Devices: devices, Plan: plan}
	if err := cm.CheckPlan(); err != nil {
		return nil, err
	}
	return cm, nil
}

// PlacementCost is the Execution Planner's cost model for placing one
// operation on one device, exposed so placement searches (internal/tune,
// the pipeline scheduler) can score assignments with exactly the greedy
// planner's arithmetic: roofline op time at the device's NeuroPilot
// efficiency, plus DMA for every non-constant input whose producer sits on
// the other side of the APU link. producer[i] is the device currently
// holding operand i (the planner threads its producerDev through here).
// ok=false means the operation cannot run on dev at all (unsupported
// opcode, or quantized work on the GPU delegate).
func PlacementCost(m *Model, op Operation, dev soc.DeviceKind, sc *soc.SoC, producer []soc.DeviceKind) (cost soc.Seconds, ok bool) {
	if !SupportedOn(op.Code, dev) {
		return 0, false
	}
	w := fusedWork(m, op)
	if dev == soc.KindGPU && w.Quantized {
		return 0, false // no integer pipeline on the GPU delegate
	}
	cost = sc.Device(dev).OpTime(w, efficiency(dev))
	// Charge moving any input that currently lives on the other side of the
	// APU link; weights are preloaded at compile time.
	for _, in := range op.Inputs {
		if m.Operands[in].IsConst() {
			continue
		}
		if crossesLink(producer[in], dev) {
			cost += sc.APULink.TransferTime(operandBytes(m, in))
		}
	}
	return cost, true
}

// crossesLink reports whether moving a value from dev a to dev b traverses
// the CPU↔APU DMA link.
func crossesLink(a, b soc.DeviceKind) bool {
	if a == b {
		return false
	}
	return a == soc.KindAPU || b == soc.KindAPU
}

// PlanCounts returns how many operations landed on each device.
func (cm *CompiledModel) PlanCounts() map[soc.DeviceKind]int {
	h := map[soc.DeviceKind]int{}
	for _, d := range cm.Plan {
		h[d]++
	}
	return h
}

// Estimate charges the whole compiled model to a profile without executing
// numerics: per-op roofline time plus boundary DMA. The full-scale Figure 6
// sweep uses this path; correctness of the numerics is covered separately by
// the executing tests.
func (cm *CompiledModel) Estimate(prof *soc.Profile) soc.Seconds {
	if prof == nil {
		prof = soc.NewProfile()
	}
	producer := make([]soc.DeviceKind, len(cm.Model.Operands))
	for i := range producer {
		producer[i] = soc.KindCPU
	}
	for oi, op := range cm.Model.Operations {
		dev := cm.Plan[oi]
		for _, in := range op.Inputs {
			if cm.Model.Operands[in].IsConst() {
				continue
			}
			if crossesLink(producer[in], dev) {
				prof.AddDMANamed(cm.SoC.APULink.TransferTime(operandBytes(cm.Model, in)), cm.Model.Name)
			}
		}
		d := cm.SoC.Device(dev)
		prof.AddOpNamed(dev, d.OpTime(fusedWork(cm.Model, op), efficiency(dev)),
			cm.Model.Name+":"+opDisplayName(cm.Model, op))
		for _, out := range op.Outputs {
			producer[out] = dev
		}
	}
	// Results must return to host memory.
	for _, out := range cm.Model.Outputs {
		if crossesLink(producer[out], soc.KindCPU) {
			prof.AddDMANamed(cm.SoC.APULink.TransferTime(operandBytes(cm.Model, out)), cm.Model.Name)
		}
	}
	return prof.Total()
}

// opDisplayName names one (possibly fused) operation for profile events and
// the plan report: the anchor opcode plus its absorbed epilogue stages.
func opDisplayName(m *Model, op Operation) string {
	name := op.Code.String()
	if act := op.Attrs.Str(FusedActivationAttr, ""); act != "" {
		name += "+" + act
	}
	if op.Attrs.Bool(FusedRequantAttr, false) {
		name += "+requant"
	}
	return name
}

// PlanReport renders the compiled plan as a table: one row per operation
// with its device and estimated time — the Execution Planner's debug view.
func (cm *CompiledModel) PlanReport() string {
	var b []byte
	appendf := func(format string, args ...interface{}) {
		b = append(b, fmt.Sprintf(format, args...)...)
	}
	appendf("%-4s %-24s %-6s %12s %10s\n", "#", "operation", "device", "MACs", "est")
	for i, op := range cm.Model.Operations {
		w := fusedWork(cm.Model, op)
		dev := cm.Plan[i]
		t := cm.SoC.Device(dev).OpTime(w, efficiency(dev))
		appendf("%-4d %-24s %-6s %12d %10s\n", i, opDisplayName(cm.Model, op), dev, w.MACs, t)
	}
	return string(b)
}
