package neuron

import (
	"testing"

	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// buildQuantConvChain: input → CONV_2D → BIAS_ADD → REQUANTIZE → CLAMP(0,6),
// the exact chain the NIR converter emits for a tflite quantized conv.
func buildQuantConvChain(t *testing.T) *Model {
	t.Helper()
	m := NewModel("qchain")
	inQ := tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0}
	wQ := tensor.QuantParams{Scale: 0.01, ZeroPoint: 128}
	accQ := tensor.QuantParams{Scale: inQ.Scale * wQ.Scale, ZeroPoint: 0}
	outQ := tensor.QuantParams{Scale: 8.0 / 255, ZeroPoint: 128}

	in := m.AddOperand("in", OperandType{Shape: tensor.Shape{1, 8, 8, 3}, DType: tensor.UInt8, Quant: &inQ}, nil)
	wf := tensor.New(tensor.Float32, tensor.Shape{4, 3, 3, 3})
	wf.FillUniform(tensor.NewRNG(1), -0.5, 0.5)
	w := m.AddOperand("w", OperandType{Shape: tensor.Shape{4, 3, 3, 3}, DType: tensor.UInt8, Quant: &wQ},
		wf.QuantizeTo(tensor.UInt8, wQ))
	bias := m.AddOperand("b", OperandType{Shape: tensor.Shape{4}, DType: tensor.Int32, Quant: &accQ},
		tensor.New(tensor.Int32, tensor.Shape{4}))
	acc := m.AddOperand("acc", OperandType{Shape: tensor.Shape{1, 8, 8, 4}, DType: tensor.Int32, Quant: &accQ}, nil)
	accB := m.AddOperand("accb", OperandType{Shape: tensor.Shape{1, 8, 8, 4}, DType: tensor.Int32, Quant: &accQ}, nil)
	q := m.AddOperand("q", OperandType{Shape: tensor.Shape{1, 8, 8, 4}, DType: tensor.UInt8, Quant: &outQ}, nil)
	out := m.AddOperand("out", OperandType{Shape: tensor.Shape{1, 8, 8, 4}, DType: tensor.UInt8, Quant: &outQ}, nil)

	convAttrs := relay.Attrs{"padding": []int{1, 1},
		"input_scale": inQ.Scale, "input_zero_point": int(inQ.ZeroPoint),
		"kernel_scale": wQ.Scale, "kernel_zero_point": int(wQ.ZeroPoint)}
	m.AddOperation(Conv2D, []int{in, w}, []int{acc}, convAttrs)
	m.AddOperation(BiasAdd, []int{acc, bias}, []int{accB}, nil)
	m.AddOperation(Requantize, []int{accB}, []int{q}, relay.Attrs{
		"input_scale": accQ.Scale, "input_zero_point": 0,
		"output_scale": outQ.Scale, "output_zero_point": int(outQ.ZeroPoint),
		"out_dtype": "uint8"})
	m.AddOperation(Clamp, []int{q}, []int{out}, relay.Attrs{"a_min": 0.0, "a_max": 6.0})
	m.Inputs = []int{in}
	m.Outputs = []int{out}
	return m
}

func quantChainInput() *tensor.Tensor {
	inQ := tensor.QuantParams{Scale: 1.0 / 255, ZeroPoint: 0}
	in := tensor.New(tensor.UInt8, tensor.Shape{1, 8, 8, 3})
	in.Quant = &inQ
	rng := tensor.NewRNG(9)
	raw := in.U8()
	for i := range raw {
		raw[i] = uint8(rng.Intn(256))
	}
	return in
}

func TestFuseOperationsCollapsesQuantChain(t *testing.T) {
	m := buildQuantConvChain(t)
	if n := FuseOperations(m); n != 3 {
		t.Fatalf("fused %d ops, want 3 (bias+requant+clamp)", n)
	}
	if len(m.Operations) != 1 {
		t.Fatalf("%d operations left, want 1", len(m.Operations))
	}
	op := m.Operations[0]
	if op.Code != Conv2D || len(op.Inputs) != 3 {
		t.Fatalf("fused op %s with %d inputs", op.Code, len(op.Inputs))
	}
	if !op.Attrs.Bool(FusedRequantAttr, false) {
		t.Error("requantize not recorded")
	}
	if op.Attrs.Str(FusedActivationAttr, "") != "relu6" {
		t.Errorf("activation %q", op.Attrs.Str(FusedActivationAttr, ""))
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("fused model invalid: %v", err)
	}
}

func TestFusionPreservesNumerics(t *testing.T) {
	sc := soc.NewDimensity800()
	in := quantChainInput()
	run := func(opts CompileOptions) *tensor.Tensor {
		m := buildQuantConvChain(t)
		cm, err := CompileWith(m, sc, []soc.DeviceKind{soc.KindCPU}, opts)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := cm.Execute([]*tensor.Tensor{in}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return outs[0]
	}
	fused := run(CompileOptions{})
	unfused := run(CompileOptions{DisableOperationFusion: true})
	if !tensor.AllClose(fused, unfused, 0, 0) {
		t.Errorf("fusion changed numerics, max diff %g", tensor.MaxAbsDiff(fused, unfused))
	}
}

func TestFusionReducesLaunchesAndTime(t *testing.T) {
	sc := soc.NewDimensity800()
	measure := func(opts CompileOptions) (*soc.Profile, int) {
		m := buildQuantConvChain(t)
		cm, err := CompileWith(m, sc, []soc.DeviceKind{soc.KindCPU}, opts)
		if err != nil {
			t.Fatal(err)
		}
		prof := soc.NewProfile()
		cm.Estimate(prof)
		return prof, len(cm.Model.Operations)
	}
	fProf, fOps := measure(CompileOptions{})
	uProf, uOps := measure(CompileOptions{DisableOperationFusion: true})
	if fOps != 1 || uOps != 4 {
		t.Fatalf("op counts fused=%d unfused=%d, want 1 and 4", fOps, uOps)
	}
	if fProf.Launches[soc.KindCPU] != 1 || uProf.Launches[soc.KindCPU] != 4 {
		t.Errorf("launches fused=%d unfused=%d", fProf.Launches[soc.KindCPU], uProf.Launches[soc.KindCPU])
	}
	if fProf.Total() >= uProf.Total() {
		t.Errorf("fusion should reduce time: %s vs %s", fProf.Total(), uProf.Total())
	}
}

func TestFusionStopsAtSharedValues(t *testing.T) {
	// The conv output feeds both a relu and a second consumer: nothing fuses.
	m := NewModel("shared")
	in := m.AddOperand("in", f32Type(1, 4, 4, 2), nil)
	w := tensor.New(tensor.Float32, tensor.Shape{2, 1, 1, 2})
	wi := m.AddOperand("w", f32Type(2, 1, 1, 2), w)
	conv := m.AddOperand("conv", f32Type(1, 4, 4, 2), nil)
	act := m.AddOperand("act", f32Type(1, 4, 4, 2), nil)
	sum := m.AddOperand("sum", f32Type(1, 4, 4, 2), nil)
	m.AddOperation(Conv2D, []int{in, wi}, []int{conv}, nil)
	m.AddOperation(ReLU, []int{conv}, []int{act}, nil)
	m.AddOperation(Add, []int{conv, act}, []int{sum}, nil)
	m.Inputs = []int{in}
	m.Outputs = []int{sum}
	if n := FuseOperations(m); n != 0 {
		t.Errorf("fused %d ops across a shared value", n)
	}
}

func TestFusionStopsAtModelOutputs(t *testing.T) {
	// The conv output is itself a model output: the relu must not fold.
	m := NewModel("outchain")
	in := m.AddOperand("in", f32Type(1, 4, 4, 2), nil)
	w := tensor.New(tensor.Float32, tensor.Shape{2, 1, 1, 2})
	wi := m.AddOperand("w", f32Type(2, 1, 1, 2), w)
	conv := m.AddOperand("conv", f32Type(1, 4, 4, 2), nil)
	act := m.AddOperand("act", f32Type(1, 4, 4, 2), nil)
	m.AddOperation(Conv2D, []int{in, wi}, []int{conv}, nil)
	m.AddOperation(ReLU, []int{conv}, []int{act}, nil)
	m.Inputs = []int{in}
	m.Outputs = []int{conv, act}
	if n := FuseOperations(m); n != 0 {
		t.Errorf("fused %d ops past a model output", n)
	}
}

func TestFusionClampMustBeRelu6(t *testing.T) {
	m := NewModel("clamp")
	in := m.AddOperand("in", f32Type(1, 4, 4, 2), nil)
	w := tensor.New(tensor.Float32, tensor.Shape{2, 1, 1, 2})
	wi := m.AddOperand("w", f32Type(2, 1, 1, 2), w)
	conv := m.AddOperand("conv", f32Type(1, 4, 4, 2), nil)
	act := m.AddOperand("act", f32Type(1, 4, 4, 2), nil)
	m.AddOperation(Conv2D, []int{in, wi}, []int{conv}, nil)
	m.AddOperation(Clamp, []int{conv}, []int{act}, relay.Attrs{"a_min": -1.0, "a_max": 1.0})
	m.Inputs = []int{in}
	m.Outputs = []int{act}
	if n := FuseOperations(m); n != 0 {
		t.Errorf("fused a non-relu6 clamp (%d)", n)
	}
}

func TestPlanReport(t *testing.T) {
	m := buildQuantConvChain(t)
	cm, err := Compile(m, soc.NewDimensity800(), []soc.DeviceKind{soc.KindCPU, soc.KindAPU})
	if err != nil {
		t.Fatal(err)
	}
	rep := cm.PlanReport()
	for _, frag := range []string{"CONV_2D", "+relu6", "+requant", "est"} {
		if !contains(rep, frag) {
			t.Errorf("plan report missing %q:\n%s", frag, rep)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestNewCompiledModelValidation(t *testing.T) {
	m := buildQuantConvChain(t)
	FuseOperations(m)
	sc := soc.NewDimensity800()
	// Plan length mismatch.
	if _, err := NewCompiledModel(m, sc, []soc.DeviceKind{soc.KindCPU},
		[]soc.DeviceKind{soc.KindCPU, soc.KindCPU}); err == nil {
		t.Error("plan length mismatch accepted")
	}
	// Plan placing an op on an unsupported device.
	m2 := NewModel("sig")
	in := m2.AddOperand("in", f32Type(4), nil)
	out := m2.AddOperand("out", f32Type(4), nil)
	m2.AddOperation(Logistic, []int{in}, []int{out}, nil)
	m2.Inputs = []int{in}
	m2.Outputs = []int{out}
	if _, err := NewCompiledModel(m2, sc, []soc.DeviceKind{soc.KindAPU},
		[]soc.DeviceKind{soc.KindAPU}); err == nil {
		t.Error("LOGISTIC-on-APU plan accepted")
	}
}
