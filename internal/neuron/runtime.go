package neuron

import (
	"fmt"

	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// The Neuron runtime: executes a compiled model's plan, computing real
// numerics through the shared kernel inventory while charging simulated
// device time and boundary DMA to a profile.

// Execute runs the compiled model on the given inputs (one tensor per
// Model.Inputs entry, in order) and returns the output tensors. When prof is
// non-nil, simulated costs are accumulated into it.
func (cm *CompiledModel) Execute(inputs []*tensor.Tensor, prof *soc.Profile) ([]*tensor.Tensor, error) {
	m := cm.Model
	if len(inputs) != len(m.Inputs) {
		return nil, fmt.Errorf("neuron: model %q expects %d inputs, got %d", m.Name, len(m.Inputs), len(inputs))
	}
	values := make([]*tensor.Tensor, len(m.Operands))
	producer := make([]soc.DeviceKind, len(m.Operands))
	for i := range producer {
		producer[i] = soc.KindCPU
	}
	for i, od := range m.Operands {
		if od.IsConst() {
			values[i] = od.Const
		}
	}
	for i, idx := range m.Inputs {
		in := inputs[i]
		want := m.Operands[idx].Type
		if !in.Shape.Equal(want.Shape) || in.DType != want.DType {
			return nil, fmt.Errorf("neuron: input %d is %s%s, model wants %s", i, in.DType, in.Shape, want)
		}
		values[idx] = in
	}

	for oi, op := range m.Operations {
		dev := cm.Plan[oi]
		args := make([]*tensor.Tensor, len(op.Inputs))
		for ai, in := range op.Inputs {
			if values[in] == nil {
				return nil, fmt.Errorf("neuron: operation %d (%s) input operand %d undefined", oi, op.Code, in)
			}
			args[ai] = values[in]
			if prof != nil && !m.Operands[in].IsConst() && crossesLink(producer[in], dev) {
				prof.AddDMANamed(cm.SoC.APULink.TransferTime(operandBytes(m, in)), m.Name)
			}
		}
		res, err := runOperation(m, op, args)
		if err != nil {
			return nil, fmt.Errorf("neuron: operation %d (%s): %w", oi, op.Code, err)
		}
		values[op.Outputs[0]] = res
		if prof != nil {
			d := cm.SoC.Device(dev)
			prof.AddOpNamed(dev, d.OpTime(fusedWork(m, op), efficiency(dev)),
				m.Name+":"+opDisplayName(m, op))
		}
		for _, out := range op.Outputs {
			producer[out] = dev
		}
	}

	outs := make([]*tensor.Tensor, len(m.Outputs))
	for i, idx := range m.Outputs {
		if values[idx] == nil {
			return nil, fmt.Errorf("neuron: model output operand %d undefined", idx)
		}
		outs[i] = values[idx]
		if prof != nil && crossesLink(producer[idx], soc.KindCPU) {
			prof.AddDMANamed(cm.SoC.APULink.TransferTime(operandBytes(m, idx)), m.Name)
		}
	}
	return outs, nil
}

// runOperation executes one (possibly fused) Neuron operation: the anchor
// kernel, then the absorbed bias / requantize / activation epilogue, all as
// a single launch.
func runOperation(m *Model, op Operation, args []*tensor.Tensor) (*tensor.Tensor, error) {
	outOperand := m.Operands[op.Outputs[0]]
	finalTy := operandRelayType(outOperand)
	quantized := isQuantizedOp(m, op)
	kernel := KernelFor(op.Code, quantized)
	if kernel == "" {
		return nil, fmt.Errorf("neuron: opcode %s has no kernel", op.Code)
	}

	mainArgs := args
	var bias *tensor.Tensor
	if isFusionAnchor(op.Code) && op.Code != Add && len(args) >= 3 {
		bias = args[2]
		mainArgs = args[:2]
	}
	hasRequant := op.Attrs.Bool(FusedRequantAttr, false)
	activation := op.Attrs.Str(FusedActivationAttr, "")

	// The anchor kernel's own output type: with a fused requantize, the
	// anchor produces the int32 accumulator; otherwise the operand's type.
	mainTy := finalTy
	if hasRequant {
		mainTy = &relay.TensorType{Shape: finalTy.Shape, DType: tensor.Int32}
		if s := op.Attrs.Float("requant_input_scale", 0); s > 0 {
			mainTy.Quant = &tensor.QuantParams{Scale: s}
		}
	}
	res, err := runKernel(kernel, mainArgs, op.Attrs, mainTy)
	if err != nil {
		return nil, err
	}
	if bias != nil {
		if res, err = runKernel("nn.bias_add", []*tensor.Tensor{res, bias}, relay.Attrs{}, mainTy); err != nil {
			return nil, err
		}
	}
	if hasRequant {
		attrs := relay.Attrs{}
		for _, k := range []string{"input_scale", "input_zero_point",
			"output_scale", "output_zero_point", "out_dtype"} {
			if v, ok := op.Attrs["requant_"+k]; ok {
				attrs[k] = v
			}
		}
		if res, err = runKernel("qnn.requantize", []*tensor.Tensor{res}, attrs, finalTy); err != nil {
			return nil, err
		}
	}
	switch activation {
	case "":
	case "relu":
		if res, err = runKernel("nn.relu", []*tensor.Tensor{res}, relay.Attrs{}, finalTy); err != nil {
			return nil, err
		}
	case "relu6":
		if res, err = runKernel("clip", []*tensor.Tensor{res},
			relay.Attrs{"a_min": 0.0, "a_max": 6.0}, finalTy); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("neuron: unknown fused activation %q", activation)
	}
	return res, nil
}

func operandRelayType(od Operand) *relay.TensorType {
	ty := &relay.TensorType{Shape: od.Type.Shape, DType: od.Type.DType}
	if od.Type.Quant != nil {
		q := *od.Type.Quant
		ty.Quant = &q
	}
	return ty
}

// runKernel dispatches into the shared reference-kernel inventory. In the
// real stack Neuron ships its own tuned libraries; the simulation reuses the
// reference numerics and models the performance difference purely through
// the engine-efficiency factors of the cost model (see DESIGN.md §2).
func runKernel(name string, args []*tensor.Tensor, attrs relay.Attrs, out *relay.TensorType) (*tensor.Tensor, error) {
	return topi.Run(name, args, attrs, out)
}

// isQuantizedOp decides whether the integer kernel path applies: any
// quantized data input selects it.
func isQuantizedOp(m *Model, op Operation) bool {
	if len(op.Inputs) == 0 {
		return false
	}
	return m.Operands[op.Inputs[0]].Type.DType.IsQuantized()
}
