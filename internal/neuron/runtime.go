package neuron

import (
	"fmt"

	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// The Neuron runtime: executes a compiled model's plan, computing real
// numerics through the shared kernel inventory while charging simulated
// device time and boundary DMA to a profile.
//
// In the real stack Neuron ships its own tuned libraries; the simulation
// reuses the reference numerics and models the performance difference purely
// through the engine-efficiency factors of the cost model (see DESIGN.md §2).
// Steady-state execution allocates almost nothing: per-call bookkeeping and
// every intermediate tensor come from a per-model pool (execState), kernels
// write into caller-supplied buffers via topi.RunInto, and quantized
// conv/dense anchors with an absorbed requantize dispatch to the
// single-launch fused kernels (topi/fused.go).

// execState holds the pooled per-Execute working set. One state serves one
// Execute call at a time; CompiledModel.execState recycles it across calls
// (claimed exclusively with an atomic Swap; see the field's doc comment).
type execState struct {
	values   []*tensor.Tensor
	producer []soc.DeviceKind
	args     [][]*tensor.Tensor
	// opOut[i] is the pooled destination for operation i's output, nil when
	// that operand is a model output: outputs escape the call and must be
	// allocated fresh every Execute.
	opOut []*tensor.Tensor
	ops   []opExec
	// pair is scratch for assembling 1- and 2-argument kernel calls without
	// allocating.
	pair [2]*tensor.Tensor
}

// opExec is the per-operation dispatch plan, derived once from the static
// model so the per-call path does no attribute parsing or type construction.
type opExec struct {
	// kernel is the anchor kernel, or the fully fused kernel when fused.
	kernel string
	// fused: the whole anchor→bias→requantize→activation chain runs as one
	// launch; args pass through unchanged.
	fused bool
	// splitBias: args[2] is a bias absorbed by the fusion pass, applied by a
	// separate nn.bias_add stage.
	splitBias bool
	// stage is the pooled int32 accumulator between the anchor and a staged
	// requantize; nil when the anchor writes the final type directly.
	stage      *tensor.Tensor
	finalTy    *relay.TensorType
	mainTy     *relay.TensorType
	reqAttrs   relay.Attrs
	activation string
}

// relu6Attrs is shared read-only by every staged relu6 epilogue.
var relu6Attrs = relay.Attrs{"a_min": 0.0, "a_max": 6.0}

var emptyAttrs = relay.Attrs{}

// fusedKernelFor returns the single-launch fused kernel for quantized
// anchors whose absorbed requantize keeps the whole chain in integer math.
func fusedKernelFor(c OpCode) string {
	switch c {
	case Conv2D, DepthwiseConv2D:
		return "qnn.conv2d_fused"
	case FullyConnected:
		return "qnn.dense_fused"
	}
	return ""
}

func newOperandTensor(od Operand) *tensor.Tensor {
	t := tensor.New(od.Type.DType, od.Type.Shape)
	if od.Type.Quant != nil {
		q := *od.Type.Quant
		t.Quant = &q
	}
	return t
}

func buildOpExec(m *Model, op Operation) opExec {
	e := opExec{
		finalTy:    operandRelayType(m.Operands[op.Outputs[0]]),
		activation: op.Attrs.Str(FusedActivationAttr, ""),
	}
	quantized := isQuantizedOp(m, op)
	e.kernel = KernelFor(op.Code, quantized)
	e.splitBias = isFusionAnchor(op.Code) && op.Code != Add && len(op.Inputs) >= 3
	e.mainTy = e.finalTy
	if !op.Attrs.Bool(FusedRequantAttr, false) {
		return e
	}
	if quantized {
		if f := fusedKernelFor(op.Code); f != "" {
			e.kernel = f
			e.fused = true
			e.splitBias = false
			return e
		}
	}
	// Staged requantize: the anchor produces the int32 accumulator, then
	// qnn.requantize narrows it into the final operand type.
	e.mainTy = &relay.TensorType{Shape: e.finalTy.Shape, DType: tensor.Int32}
	if s := op.Attrs.Float("requant_input_scale", 0); s > 0 {
		e.mainTy.Quant = &tensor.QuantParams{Scale: s}
	}
	e.reqAttrs = relay.Attrs{}
	for _, k := range []string{"input_scale", "input_zero_point",
		"output_scale", "output_zero_point", "out_dtype"} {
		if v, ok := op.Attrs["requant_"+k]; ok {
			e.reqAttrs[k] = v
		}
	}
	e.stage = tensor.New(tensor.Int32, e.finalTy.Shape)
	return e
}

func (cm *CompiledModel) newExecState() *execState {
	m := cm.Model
	st := &execState{
		values:   make([]*tensor.Tensor, len(m.Operands)),
		producer: make([]soc.DeviceKind, len(m.Operands)),
		args:     make([][]*tensor.Tensor, len(m.Operations)),
		opOut:    make([]*tensor.Tensor, len(m.Operations)),
		ops:      make([]opExec, len(m.Operations)),
	}
	isOut := make([]bool, len(m.Operands))
	for _, idx := range m.Outputs {
		isOut[idx] = true
	}
	for oi, op := range m.Operations {
		st.args[oi] = make([]*tensor.Tensor, len(op.Inputs))
		if !isOut[op.Outputs[0]] {
			st.opOut[oi] = newOperandTensor(m.Operands[op.Outputs[0]])
		}
		st.ops[oi] = buildOpExec(m, op)
	}
	return st
}

// Execute runs the compiled model on the given inputs (one tensor per
// Model.Inputs entry, in order) and returns the output tensors. When prof is
// non-nil, simulated costs are accumulated into it.
func (cm *CompiledModel) Execute(inputs []*tensor.Tensor, prof *soc.Profile) ([]*tensor.Tensor, error) {
	m := cm.Model
	if len(inputs) != len(m.Inputs) {
		return nil, fmt.Errorf("neuron: model %q expects %d inputs, got %d", m.Name, len(m.Inputs), len(inputs))
	}
	st := cm.execState.Swap(nil)
	if st == nil {
		st = cm.newExecState()
	}
	defer cm.execState.Store(st)
	values, producer := st.values, st.producer
	for i, od := range m.Operands {
		producer[i] = soc.KindCPU
		if od.IsConst() {
			values[i] = od.Const
		} else {
			values[i] = nil
		}
	}
	for i, idx := range m.Inputs {
		in := inputs[i]
		want := m.Operands[idx].Type
		if !in.Shape.Equal(want.Shape) || in.DType != want.DType {
			return nil, fmt.Errorf("neuron: input %d is %s%s, model wants %s", i, in.DType, in.Shape, want)
		}
		values[idx] = in
	}

	for oi, op := range m.Operations {
		dev := cm.Plan[oi]
		args := st.args[oi]
		for ai, in := range op.Inputs {
			if values[in] == nil {
				return nil, fmt.Errorf("neuron: operation %d (%s) input operand %d undefined", oi, op.Code, in)
			}
			args[ai] = values[in]
			if prof != nil && !m.Operands[in].IsConst() && crossesLink(producer[in], dev) {
				prof.AddDMANamed(cm.SoC.APULink.TransferTime(operandBytes(m, in)), m.Name)
			}
		}
		dst := st.opOut[oi]
		if dst == nil {
			// Model output: it outlives this call, so it cannot be pooled.
			dst = newOperandTensor(m.Operands[op.Outputs[0]])
		}
		res, err := runOperation(st, oi, op, args, dst)
		if err != nil {
			return nil, fmt.Errorf("neuron: operation %d (%s): %w", oi, op.Code, err)
		}
		values[op.Outputs[0]] = res
		if prof != nil {
			d := cm.SoC.Device(dev)
			prof.AddOpNamed(dev, d.OpTime(fusedWork(m, op), efficiency(dev)),
				m.Name+":"+opDisplayName(m, op))
		}
		for _, out := range op.Outputs {
			producer[out] = dev
		}
	}

	outs := make([]*tensor.Tensor, len(m.Outputs))
	for i, idx := range m.Outputs {
		if values[idx] == nil {
			return nil, fmt.Errorf("neuron: model output operand %d undefined", idx)
		}
		outs[i] = values[idx]
		if prof != nil && crossesLink(producer[idx], soc.KindCPU) {
			prof.AddDMANamed(cm.SoC.APULink.TransferTime(operandBytes(m, idx)), m.Name)
		}
	}
	return outs, nil
}

// runOperation executes one (possibly fused) Neuron operation into dst
// following the dispatch plan prepared at state creation: either a single
// fused launch, or the staged anchor → bias_add → requantize → activation
// chain with elementwise stages running in place.
func runOperation(st *execState, oi int, op Operation, args []*tensor.Tensor, dst *tensor.Tensor) (*tensor.Tensor, error) {
	e := &st.ops[oi]
	if e.kernel == "" {
		return nil, fmt.Errorf("neuron: opcode %s has no kernel", op.Code)
	}
	if e.fused {
		if err := topi.RunInto(e.kernel, args, op.Attrs, e.finalTy, dst); err != nil {
			return nil, err
		}
		return dst, nil
	}
	mainArgs := args
	var bias *tensor.Tensor
	if e.splitBias {
		bias = args[2]
		mainArgs = args[:2]
	}
	mainDst := dst
	if e.stage != nil {
		mainDst = e.stage
	}
	if err := topi.RunInto(e.kernel, mainArgs, op.Attrs, e.mainTy, mainDst); err != nil {
		return nil, err
	}
	if bias != nil {
		st.pair[0], st.pair[1] = mainDst, bias
		if err := topi.RunInto("nn.bias_add", st.pair[:2], emptyAttrs, e.mainTy, mainDst); err != nil {
			return nil, err
		}
	}
	if e.stage != nil {
		st.pair[0] = mainDst
		if err := topi.RunInto("qnn.requantize", st.pair[:1], e.reqAttrs, e.finalTy, dst); err != nil {
			return nil, err
		}
	}
	switch e.activation {
	case "":
	case "relu":
		st.pair[0] = dst
		if err := topi.RunInto("nn.relu", st.pair[:1], emptyAttrs, e.finalTy, dst); err != nil {
			return nil, err
		}
	case "relu6":
		st.pair[0] = dst
		if err := topi.RunInto("clip", st.pair[:1], relu6Attrs, e.finalTy, dst); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("neuron: unknown fused activation %q", e.activation)
	}
	return dst, nil
}

func operandRelayType(od Operand) *relay.TensorType {
	ty := &relay.TensorType{Shape: od.Type.Shape, DType: od.Type.DType}
	if od.Type.Quant != nil {
		q := *od.Type.Quant
		ty.Quant = &q
	}
	return ty
}

// isQuantizedOp decides whether the integer kernel path applies: any
// quantized data input selects it.
func isQuantizedOp(m *Model, op Operation) bool {
	if len(op.Inputs) == 0 {
		return false
	}
	return m.Operands[op.Inputs[0]].Type.DType.IsQuantized()
}
