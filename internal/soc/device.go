// Package soc simulates the experiment platform of the paper (Table 2: an
// OPPO Reno4 Z 5G with a MediaTek Dimensity 800 — 4×Cortex-A76 + 4×Cortex-A55
// CPU, Mali-G57 MC4 GPU, and MediaTek APU 3.0).
//
// The simulator is an analytical roofline cost model plus a virtual timeline:
// every kernel launch is charged max(compute-bound, memory-bound) time plus a
// launch overhead on its device, and crossing between host memory and the APU
// charges a DMA transfer. Experiments compare *relative* inference times
// across target permutations, which this model preserves: who wins, by what
// rough factor, and where crossovers fall are all driven by real per-op MAC
// and byte counts extracted from the real model graphs.
package soc

import (
	"fmt"
)

// Seconds is the simulated time unit (virtual seconds, float64).
type Seconds float64

// Ms formats a duration in milliseconds.
func (s Seconds) Ms() float64 { return float64(s) * 1e3 }

func (s Seconds) String() string { return fmt.Sprintf("%.3fms", s.Ms()) }

// DeviceKind enumerates the backend processors of the simulated SoC.
type DeviceKind int

const (
	KindCPU DeviceKind = iota
	KindGPU
	KindAPU
	// NumDeviceKinds is the number of distinct device kinds; code that keeps
	// per-device state (locks, counters) sizes arrays with it.
	NumDeviceKinds
)

// AllDeviceKinds lists every device kind in canonical order.
func AllDeviceKinds() []DeviceKind {
	return []DeviceKind{KindCPU, KindGPU, KindAPU}
}

func (k DeviceKind) String() string {
	switch k {
	case KindCPU:
		return "cpu"
	case KindGPU:
		return "gpu"
	case KindAPU:
		return "apu"
	}
	return fmt.Sprintf("device(%d)", int(k))
}

// Device models one backend processor with roofline parameters.
type Device struct {
	Kind DeviceKind
	Name string

	// PeakMACsF32/PeakMACsI8 are peak multiply-accumulates per second for
	// float32 and int8 workloads.
	PeakMACsF32 float64
	PeakMACsI8  float64
	// MemBW is the sustained memory bandwidth in bytes/second.
	MemBW float64
	// LaunchOverhead is charged once per kernel launch.
	LaunchOverhead Seconds
}

// OpTime charges one kernel: roofline of compute vs. memory traffic, scaled
// by the executing engine's efficiency (how much of peak its kernels reach),
// plus launch overhead.
func (d *Device) OpTime(w Work, efficiency float64) Seconds {
	if efficiency <= 0 {
		efficiency = 1
	}
	peak := d.PeakMACsF32
	if w.Quantized {
		peak = d.PeakMACsI8
	}
	compute := float64(w.MACs) / (peak * efficiency)
	memory := float64(w.Bytes) / d.MemBW
	t := compute
	if memory > t {
		t = memory
	}
	return Seconds(t) + d.LaunchOverhead
}

// DMALink models the transfer path between host (CPU) memory and an
// accelerator's local memory.
type DMALink struct {
	Bandwidth float64 // bytes/second
	Latency   Seconds // per-transfer setup cost
}

// TransferTime charges moving n bytes across the link.
func (l DMALink) TransferTime(n int64) Seconds {
	return l.Latency + Seconds(float64(n)/l.Bandwidth)
}

// SoC bundles the devices and interconnect of the simulated chipset.
type SoC struct {
	Name    string
	Chipset string
	OS      string
	CPU     *Device
	GPU     *Device
	APU     *Device
	// APULink is the DMA path CPU memory <-> APU local memory; every BYOC /
	// NeuroPilot subgraph boundary pays it in both directions.
	APULink DMALink
}

// Device returns the device of the given kind.
func (s *SoC) Device(k DeviceKind) *Device {
	switch k {
	case KindCPU:
		return s.CPU
	case KindGPU:
		return s.GPU
	case KindAPU:
		return s.APU
	}
	return nil
}

// NewDimensity800 builds the simulated OPPO Reno4 Z 5G platform of Table 2.
//
// Parameter provenance (order-of-magnitude public figures, not calibrated
// measurements — see DESIGN.md §2):
//   - 4×A76 @2.0GHz, 2×128-bit FMA pipes ≈ 64 GFLOP/s ≈ 32 GMAC/s fp32 for
//     the big cluster; int8 dot-product ops roughly 4× that.
//   - LPDDR4X ≈ 12 GB/s sustained.
//   - APU 3.0 family ≈ 2.4 TOPS int8 ≈ 1200 GMAC/s; fp16/fp32 path far lower.
//   - APU invocations carry a firmware round-trip of tens of microseconds.
func NewDimensity800() *SoC {
	return &SoC{
		Name:    "OPPO Reno4 Z 5G",
		Chipset: "MediaTek MT6873V Dimensity 800",
		OS:      "Android 11",
		CPU: &Device{
			Kind:           KindCPU,
			Name:           "4x2.0 GHz Cortex-A76 & 4x2.0 GHz Cortex-A55",
			PeakMACsF32:    32e9,
			PeakMACsI8:     128e9,
			MemBW:          12e9,
			LaunchOverhead: 4e-6,
		},
		GPU: &Device{
			Kind:           KindGPU,
			Name:           "Mali-G57 MC4",
			PeakMACsF32:    60e9,
			PeakMACsI8:     120e9,
			MemBW:          12e9,
			LaunchOverhead: 25e-6,
		},
		APU: &Device{
			Kind:           KindAPU,
			Name:           "MediaTek APU 3.0",
			PeakMACsF32:    180e9,
			PeakMACsI8:     1200e9,
			MemBW:          20e9,
			LaunchOverhead: 12e-6,
		},
		APULink: DMALink{Bandwidth: 8e9, Latency: 40e-6},
	}
}

// Engine efficiencies: what fraction of device peak each software stack's
// kernels achieve. TVM's portable interpreted kernels are well below the
// hand-tuned NeuroPilot libraries — the gap the paper's Figures 4/6 show.
const (
	// EffTVMCPU: TVM-compiled generic kernels on the mobile CPU.
	EffTVMCPU = 0.30
	// EffTVMCPUI8: TVM's generic int8 lowering does not use the CPU's
	// dot-product instructions, so it reaches a much smaller fraction of the
	// integer peak than the float path does of the FP peak.
	EffTVMCPUI8 = 0.10
	// EffNeuroPilotCPU: MediaTek's tuned CPU backend.
	EffNeuroPilotCPU = 0.70
	// EffNeuroPilotAPU: the APU runs near peak on supported layers.
	EffNeuroPilotAPU = 0.90
	// EffNeuroPilotGPU: the GPU delegate (extension; unused by the paper's
	// CPU/APU permutations).
	EffNeuroPilotGPU = 0.60
)

// TVMEff selects the TVM engine's efficiency for a workload.
func TVMEff(w Work) float64 {
	if w.Quantized {
		return EffTVMCPUI8
	}
	return EffTVMCPU
}
