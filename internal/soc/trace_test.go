package soc

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestTimelineEventsStableOrder(t *testing.T) {
	tl := NewTimeline()
	// Schedule out of start order: the APU task lands at [0,2], then a CPU
	// task at [0,1] and another CPU task behind it at [1,2].
	tl.Schedule(KindAPU, "apu-a", 0, 2)
	tl.Schedule(KindCPU, "cpu-a", 0, 1)
	tl.Schedule(KindCPU, "cpu-b", 0, 1)

	ev := tl.Events()
	want := []string{"cpu-a", "apu-a", "cpu-b"} // (start, device) order
	if len(ev) != len(want) {
		t.Fatalf("got %d events, want %d", len(ev), len(want))
	}
	for i, w := range want {
		if ev[i].Label != w {
			t.Errorf("event[%d] = %q, want %q", i, ev[i].Label, w)
		}
	}
	// Equal (start, device): schedule order must break the tie stably.
	tl2 := NewTimeline()
	tl2.ScheduleMulti([]DeviceKind{KindCPU}, "first", 0, 0)
	tl2.ScheduleMulti([]DeviceKind{KindCPU}, "second", 0, 0)
	ev2 := tl2.Events()
	if ev2[0].Label != "first" || ev2[1].Label != "second" {
		t.Errorf("tied events reordered: %q, %q", ev2[0].Label, ev2[1].Label)
	}
}

func TestTimelineReset(t *testing.T) {
	tl := NewTimeline()
	tl.Schedule(KindCPU, "a", 0, 5)
	tl.Reset()
	if got := tl.Events(); len(got) != 0 {
		t.Errorf("events after Reset = %d, want 0", len(got))
	}
	if tl.Now() != 0 {
		t.Errorf("Now after Reset = %v, want 0", tl.Now())
	}
	// Device availability is cleared too: a new task starts at its ready time.
	if end := tl.Schedule(KindCPU, "b", 0, 1); end != 1 {
		t.Errorf("first task after Reset ends at %v, want 1", end)
	}
}

func TestProfileEventsOffByDefault(t *testing.T) {
	p := NewProfile()
	p.AddOpNamed(KindCPU, 1e-3, "conv")
	p.AddDMA(1e-4)
	p.AddSubgraph()
	if p.EventsEnabled() {
		t.Error("EventsEnabled = true before EnableEvents")
	}
	if p.Events() != nil {
		t.Errorf("Events = %v, want nil when recording is off", p.Events())
	}
}

// Recorded events partition Total() exactly: the basis of the -profile
// table's "self times sum to the run's simulated time" guarantee.
func TestProfileEventsPartitionTotal(t *testing.T) {
	p := NewProfile()
	p.EnableEvents()
	p.AddOpNamed(KindCPU, 1e-3, "conv2d")
	p.AddOpNamed(KindAPU, 2e-3, "nir_0:CONV_2D")
	p.AddDMANamed(5e-4, "nir_0")
	p.AddSubgraphNamed("nir_0")

	events := p.Events()
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	var sum Seconds
	for _, ev := range events {
		sum += ev.Time
	}
	if sum != p.Total() {
		t.Errorf("event sum %v != Total %v", sum, p.Total())
	}
	if events[1].Device != KindAPU || events[1].Kind != EventOp {
		t.Errorf("event[1] = %+v, want an APU op", events[1])
	}
	if events[2].Kind != EventDMA || events[3].Kind != EventDispatch {
		t.Errorf("kinds = %v %v, want dma, dispatch", events[2].Kind, events[3].Kind)
	}
}

func TestAggregateEventsFoldsAndSorts(t *testing.T) {
	events := []ProfileEvent{
		{Kind: EventOp, Name: "add", Device: KindCPU, Time: 1e-4},
		{Kind: EventOp, Name: "conv", Device: KindAPU, Time: 2e-3},
		{Kind: EventOp, Name: "add", Device: KindCPU, Time: 1e-4},
		{Kind: EventOp, Name: "add", Device: KindAPU, Time: 3e-4}, // same name, other device: own row
	}
	rows := AggregateEvents(events)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].Name != "conv" {
		t.Errorf("rows not sorted by self-time: first is %q", rows[0].Name)
	}
	for _, r := range rows {
		if r.Name == "add" && r.Device == KindCPU {
			if r.Count != 2 || r.Time != 2e-4 {
				t.Errorf("cpu add row = count %d time %v, want 2, 0.0002", r.Count, r.Time)
			}
		}
	}
	var sum Seconds
	for _, r := range rows {
		sum += r.Time
	}
	if sum != 1e-4+2e-3+1e-4+3e-4 {
		t.Errorf("row sum %v does not preserve event sum", sum)
	}
}

func TestOpTable(t *testing.T) {
	p := NewProfile()
	p.EnableEvents()
	p.AddOpNamed(KindAPU, 2e-3, "nir_0:CONV_2D+relu")
	p.AddDMANamed(5e-4, "nir_0")
	out := OpTable(p.Events())
	if !strings.Contains(out, "nir_0:CONV_2D+relu") || !strings.Contains(out, "apu") {
		t.Errorf("table missing the APU op row:\n%s", out)
	}
	if !strings.Contains(out, "host") {
		t.Errorf("non-op charges should report device host:\n%s", out)
	}
	if !strings.Contains(out, "total (simulated)") || !strings.Contains(out, "100.00%") {
		t.Errorf("table missing the total row:\n%s", out)
	}
}

func TestTimelineSpans(t *testing.T) {
	tl := NewTimeline()
	tl.Schedule(KindCPU, "detect", 0, 0.5)
	tl.Schedule(KindAPU, "emotion", 0.5, 0.25)
	spans := TimelineSpans(tl)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	for _, s := range spans {
		if s.PID != obs.PIDSim {
			t.Errorf("span %q on pid %d, want the simulated clock %d", s.Name, s.PID, obs.PIDSim)
		}
	}
	if spans[0].Start != 0 || spans[0].Dur != 500_000 {
		t.Errorf("detect span = %d+%dµs, want 0+500000", spans[0].Start, spans[0].Dur)
	}
	if spans[1].Start != 500_000 || spans[1].TID != simTID(KindAPU) {
		t.Errorf("emotion span = start %d tid %d, want 500000 on the apu row", spans[1].Start, spans[1].TID)
	}
}

// EventSpans lays charges out sequentially: each span starts where the
// previous ended, dma/dispatch on their own rows.
func TestEventSpansSequentialLayout(t *testing.T) {
	events := []ProfileEvent{
		{Kind: EventOp, Name: "conv", Device: KindAPU, Time: 1e-3},
		{Kind: EventDMA, Name: "nir_0", Device: KindCPU, Time: 5e-4},
		{Kind: EventOp, Name: "softmax", Device: KindCPU, Time: 2e-4},
	}
	spans := EventSpans(events)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	var cursor int64
	for i, s := range spans {
		if s.Start != cursor {
			t.Errorf("span[%d] starts at %dµs, want %d (sequential)", i, s.Start, cursor)
		}
		cursor += s.Dur
	}
	ndev := len(AllDeviceKinds())
	if spans[0].TID != simTID(KindAPU) || spans[1].TID != ndev+1 || spans[2].TID != simTID(KindCPU) {
		t.Errorf("tids = %d %d %d, want apu, dma row %d, cpu", spans[0].TID, spans[1].TID, spans[2].TID, ndev+1)
	}
}

func TestSimThreadNames(t *testing.T) {
	names := SimThreadNames()
	ndev := len(AllDeviceKinds())
	if len(names) != ndev+2 {
		t.Fatalf("got %d thread names, want %d devices + dma + dispatch", len(names), ndev)
	}
	if names[obs.Thread{PID: obs.PIDSim, TID: simTID(KindCPU)}] != "cpu" {
		t.Errorf("cpu row mislabeled: %v", names)
	}
	if names[obs.Thread{PID: obs.PIDSim, TID: ndev + 1}] != "dma" ||
		names[obs.Thread{PID: obs.PIDSim, TID: ndev + 2}] != "dispatch" {
		t.Errorf("dma/dispatch rows mislabeled: %v", names)
	}
}
