package soc

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/relay"
	"repro/internal/tensor"
)

func TestDimensity800Spec(t *testing.T) {
	sc := NewDimensity800()
	if sc.Chipset != "MediaTek MT6873V Dimensity 800" || sc.OS != "Android 11" {
		t.Error("Table 2 identity wrong")
	}
	if sc.CPU.Kind != KindCPU || sc.APU.Kind != KindAPU || sc.GPU.Kind != KindGPU {
		t.Error("device kinds wrong")
	}
	if sc.Device(KindAPU) != sc.APU || sc.Device(KindCPU) != sc.CPU {
		t.Error("Device() lookup wrong")
	}
	// The APU must dominate on int8 compute; the CPU has lower launch cost.
	if sc.APU.PeakMACsI8 <= sc.CPU.PeakMACsI8 {
		t.Error("APU should out-MAC the CPU on int8")
	}
	if sc.CPU.LaunchOverhead >= sc.APU.LaunchOverhead {
		t.Error("CPU launches should be cheaper than APU invocations")
	}
}

func TestOpTimeRoofline(t *testing.T) {
	d := &Device{PeakMACsF32: 1e9, PeakMACsI8: 4e9, MemBW: 1e9, LaunchOverhead: 0}
	// Compute-bound: lots of MACs, few bytes.
	computeBound := d.OpTime(Work{MACs: 1e9, Bytes: 10}, 1)
	if math.Abs(float64(computeBound)-1.0) > 1e-9 {
		t.Errorf("compute-bound time %v, want 1s", computeBound)
	}
	// Memory-bound: few MACs, lots of bytes.
	memBound := d.OpTime(Work{MACs: 10, Bytes: 1e9}, 1)
	if math.Abs(float64(memBound)-1.0) > 1e-9 {
		t.Errorf("memory-bound time %v, want 1s", memBound)
	}
	// Quantized work uses the int8 peak.
	q := d.OpTime(Work{MACs: 4e9, Bytes: 10, Quantized: true}, 1)
	if math.Abs(float64(q)-1.0) > 1e-9 {
		t.Errorf("int8 time %v, want 1s", q)
	}
	// Efficiency scales compute time.
	half := d.OpTime(Work{MACs: 1e9, Bytes: 10}, 0.5)
	if math.Abs(float64(half)-2.0) > 1e-9 {
		t.Errorf("eff=0.5 time %v, want 2s", half)
	}
}

func TestDMATransfer(t *testing.T) {
	l := DMALink{Bandwidth: 1e9, Latency: 1e-6}
	got := l.TransferTime(1e9)
	if math.Abs(float64(got)-(1+1e-6)) > 1e-12 {
		t.Errorf("transfer time %v", got)
	}
}

func TestTimelineScheduling(t *testing.T) {
	tl := NewTimeline()
	end1 := tl.Schedule(KindCPU, "a", 0, 10)
	if end1 != 10 {
		t.Errorf("first task end %v", end1)
	}
	// Same device: serialized.
	end2 := tl.Schedule(KindCPU, "b", 0, 5)
	if end2 != 15 {
		t.Errorf("second CPU task end %v, want 15", end2)
	}
	// Other device: parallel.
	end3 := tl.Schedule(KindAPU, "c", 0, 7)
	if end3 != 7 {
		t.Errorf("APU task end %v, want 7", end3)
	}
	if tl.Now() != 15 {
		t.Errorf("makespan %v", tl.Now())
	}
	if tl.BusyTime(KindCPU) != 15 || tl.BusyTime(KindAPU) != 7 {
		t.Error("busy times wrong")
	}
	if tl.Avail(KindAPU) != 7 {
		t.Error("Avail wrong")
	}
	if len(tl.Events()) != 3 {
		t.Error("events not recorded")
	}
}

func TestProfileAccumulation(t *testing.T) {
	p := NewProfile()
	p.AddOp(KindCPU, 1e-3)
	p.AddOp(KindAPU, 2e-3)
	p.AddDMA(0.5e-3)
	p.AddSubgraph()
	want := Seconds(1e-3 + 2e-3 + 0.5e-3 + float64(SubgraphDispatchOverhead))
	if math.Abs(float64(p.Total()-want)) > 1e-12 {
		t.Errorf("total %v, want %v", p.Total(), want)
	}
	if p.Subgraphs != 1 || p.Launches[KindCPU] != 1 {
		t.Error("counters wrong")
	}
	s := p.String()
	if !strings.Contains(s, "cpu") || !strings.Contains(s, "subgraphs=1") {
		t.Errorf("profile string %q", s)
	}
}

func TestWorkOfConv(t *testing.T) {
	data := relay.NewVar("d", relay.TType(tensor.Float32, 1, 8, 8, 3))
	w := relay.Const(tensor.New(tensor.Float32, tensor.Shape{4, 3, 3, 3}))
	conv := relay.NewCall(relay.GetOp("nn.conv2d"), []relay.Expr{data, w},
		relay.Attrs{"padding": []int{1, 1}})
	if _, err := relay.InferTypes(relay.NewFunc([]*relay.Var{data}, conv)); err != nil {
		t.Fatal(err)
	}
	work := WorkOf(conv)
	// MACs = 8*8*4 outputs × 3*3*3 taps.
	if work.MACs != 8*8*4*27 {
		t.Errorf("conv MACs %d, want %d", work.MACs, 8*8*4*27)
	}
	if work.Quantized {
		t.Error("float conv flagged quantized")
	}
	if work.Bytes <= 0 {
		t.Error("no bytes counted")
	}
}

func TestWorkOfQuantizedConv(t *testing.T) {
	q := tensor.QuantParams{Scale: 0.02, ZeroPoint: 128}
	wq := tensor.QuantParams{Scale: 0.01, ZeroPoint: 0}
	data := relay.NewVar("d", relay.QTType(tensor.UInt8, q, 1, 8, 8, 3))
	wt := tensor.New(tensor.Float32, tensor.Shape{4, 3, 3, 3}).QuantizeTo(tensor.UInt8, wq)
	conv := relay.NewCall(relay.GetOp("qnn.conv2d"), []relay.Expr{data, relay.Const(wt)},
		relay.Attrs{"padding": []int{1, 1}, "input_scale": q.Scale, "input_zero_point": 128,
			"kernel_scale": wq.Scale, "kernel_zero_point": 0})
	if _, err := relay.InferTypes(relay.NewFunc([]*relay.Var{data}, conv)); err != nil {
		t.Fatal(err)
	}
	if !WorkOf(conv).Quantized {
		t.Error("quantized conv not flagged")
	}
}

func TestGantt(t *testing.T) {
	tl := NewTimeline()
	tl.Schedule(KindCPU, "d0", 0, 5)
	tl.Schedule(KindAPU, "e0", 5, 5)
	g := tl.Gantt(40)
	if !strings.Contains(g, "cpu") || !strings.Contains(g, "apu") {
		t.Errorf("gantt missing devices:\n%s", g)
	}
	if !strings.Contains(g, "d") || !strings.Contains(g, "e") {
		t.Errorf("gantt missing labels:\n%s", g)
	}
}

// Property: OpTime is monotone in both MACs and bytes.
func TestOpTimeMonotoneProperty(t *testing.T) {
	d := NewDimensity800().CPU
	f := func(m1, m2, b1, b2 uint32) bool {
		w1 := Work{MACs: int64(m1 % 1e6), Bytes: int64(b1 % 1e6)}
		w2 := Work{MACs: w1.MACs + int64(m2%1e6), Bytes: w1.Bytes + int64(b2%1e6)}
		return d.OpTime(w2, EffTVMCPU) >= d.OpTime(w1, EffTVMCPU)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: timeline makespan equals the max of per-device busy spans when
// all tasks are ready at 0 (no idle gaps are created).
func TestTimelineNoSpuriousIdleProperty(t *testing.T) {
	f := func(durs []uint16) bool {
		tl := NewTimeline()
		var cpuSum Seconds
		for _, d := range durs {
			dur := Seconds(float64(d%1000)) * 1e-6
			tl.Schedule(KindCPU, "x", 0, dur)
			cpuSum += dur
		}
		return math.Abs(float64(tl.BusyTime(KindCPU)-cpuSum)) < 1e-12 &&
			math.Abs(float64(tl.Now()-cpuSum)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
