package soc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
)

// The observability bridge of the simulation: Profile optionally records a
// labeled event per charge (the raw material of npc -profile's per-op
// table), and Timeline intervals / Profile events convert into
// simulated-clock obs spans for Chrome-trace export.

// ProfileEventKind classifies one profile charge.
type ProfileEventKind int

const (
	// EventOp is one kernel launch (AddOp).
	EventOp ProfileEventKind = iota
	// EventDMA is one boundary transfer (AddDMA).
	EventDMA
	// EventDispatch is one external-subgraph dispatch overhead (AddSubgraph).
	EventDispatch
)

func (k ProfileEventKind) String() string {
	switch k {
	case EventOp:
		return "op"
	case EventDMA:
		return "dma"
	case EventDispatch:
		return "dispatch"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ProfileEvent is one labeled charge: every AddOp/AddDMA/AddSubgraph call
// appends one when event recording is enabled, so the events partition the
// profile's Total() exactly — per-op tables built from them sum to the
// run's simulated time by construction.
type ProfileEvent struct {
	Kind   ProfileEventKind
	Name   string
	Device DeviceKind // meaningful for EventOp; KindCPU for host-side charges
	Time   Seconds
}

// EnableEvents turns on per-charge event recording (off by default: the
// steady-state hot path stays allocation-free when profiling is disabled).
func (p *Profile) EnableEvents() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.events == nil {
		p.events = []ProfileEvent{}
	}
}

// EventsEnabled reports whether per-charge events are being recorded.
func (p *Profile) EventsEnabled() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.events != nil
}

// Events returns a copy of the recorded charge events in charge order
// (nil unless EnableEvents was called before the charges).
func (p *Profile) Events() []ProfileEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.events == nil {
		return nil
	}
	return append([]ProfileEvent(nil), p.events...)
}

// AddOpNamed charges one kernel launch attributed to a named op.
func (p *Profile) AddOpNamed(dev DeviceKind, t Seconds, name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.DeviceTime[dev] += t
	p.Launches[dev]++
	if p.events != nil {
		p.events = append(p.events, ProfileEvent{Kind: EventOp, Name: name, Device: dev, Time: t})
	}
}

// AddDMANamed charges one boundary transfer attributed to a named region.
func (p *Profile) AddDMANamed(t Seconds, name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.DMATime += t
	if p.events != nil {
		p.events = append(p.events, ProfileEvent{Kind: EventDMA, Name: name, Device: KindCPU, Time: t})
	}
}

// AddSubgraphNamed counts one external subgraph invocation attributed to a
// named region and charges its dispatch overhead.
func (p *Profile) AddSubgraphNamed(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.Subgraphs++
	p.DispatchTime += SubgraphDispatchOverhead
	if p.events != nil {
		p.events = append(p.events, ProfileEvent{Kind: EventDispatch, Name: name, Device: KindCPU, Time: SubgraphDispatchOverhead})
	}
}

// ------------------------------------------------------------ trace spans

// simTID maps a device to its simulated-clock trace row. Host-side DMA and
// dispatch charges get rows of their own after the devices.
func simTID(dev DeviceKind) int { return int(dev) + 1 }

// SimThreadNames labels the simulated-clock trace rows for export.
func SimThreadNames() map[obs.Thread]string {
	names := map[obs.Thread]string{}
	for _, k := range AllDeviceKinds() {
		names[obs.Thread{PID: obs.PIDSim, TID: simTID(k)}] = k.String()
	}
	n := len(AllDeviceKinds())
	names[obs.Thread{PID: obs.PIDSim, TID: n + 1}] = "dma"
	names[obs.Thread{PID: obs.PIDSim, TID: n + 2}] = "dispatch"
	return names
}

// TimelineSpans converts a timeline's intervals into simulated-clock spans,
// one trace row per device — the pipelined view where device-exclusivity
// gaps (the paper's Figure 5) are visible.
func TimelineSpans(tl *Timeline) []obs.Span {
	events := tl.Events()
	out := make([]obs.Span, 0, len(events))
	for _, e := range events {
		out = append(out, obs.Span{
			Name:  e.Label,
			Cat:   "timeline",
			PID:   obs.PIDSim,
			TID:   simTID(e.Device),
			Start: int64(float64(e.Start) * 1e6),
			Dur:   int64(float64(e.End-e.Start) * 1e6),
			Args:  []obs.Arg{obs.A("device", e.Device.String())},
		})
	}
	return out
}

// EventSpans lays a profile's charge events out sequentially on the
// simulated clock — the profile's charging model is a sequential sum, so
// each event starts where the previous one ended — with one trace row per
// device plus dma/dispatch rows.
func EventSpans(events []ProfileEvent) []obs.Span {
	out := make([]obs.Span, 0, len(events))
	ndev := len(AllDeviceKinds())
	var cursor Seconds
	for _, ev := range events {
		tid := simTID(ev.Device)
		switch ev.Kind {
		case EventDMA:
			tid = ndev + 1
		case EventDispatch:
			tid = ndev + 2
		}
		out = append(out, obs.Span{
			Name:  ev.Name,
			Cat:   ev.Kind.String(),
			PID:   obs.PIDSim,
			TID:   tid,
			Start: int64(float64(cursor) * 1e6),
			Dur:   int64(float64(ev.Time) * 1e6),
			Args:  []obs.Arg{obs.A("device", ev.Device.String())},
		})
		cursor += ev.Time
	}
	return out
}

// ------------------------------------------------------------ op table

// OpRow is one aggregated line of the per-op profile table: all charges
// sharing a kind, name and device.
type OpRow struct {
	Kind   ProfileEventKind
	Name   string
	Device DeviceKind
	Count  int
	Time   Seconds
}

// AggregateEvents folds charge events into per-(kind, name, device) rows
// sorted by self-time, descending. The rows' times sum exactly to the sum
// of the events' times (= Profile.Total() when the events cover one run).
func AggregateEvents(events []ProfileEvent) []OpRow {
	type key struct {
		kind ProfileEventKind
		name string
		dev  DeviceKind
	}
	agg := map[key]*OpRow{}
	var order []key
	for _, ev := range events {
		k := key{kind: ev.Kind, name: ev.Name, dev: ev.Device}
		row, ok := agg[k]
		if !ok {
			row = &OpRow{Kind: ev.Kind, Name: ev.Name, Device: ev.Device}
			agg[k] = row
			order = append(order, k)
		}
		row.Count++
		row.Time += ev.Time
	}
	out := make([]OpRow, 0, len(order))
	for _, k := range order {
		out = append(out, *agg[k])
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time > out[j].Time })
	return out
}

// OpTable renders the aggregated rows as the per-op profile table npc
// -profile prints (the debug_executor-style dump): self-time sorted, with a
// total row that is the exact sum of the lines above it.
func OpTable(events []ProfileEvent) string {
	rows := AggregateEvents(events)
	var total Seconds
	for _, r := range rows {
		total += r.Time
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %-8s %-9s %6s %12s %7s\n", "name", "kind", "device", "calls", "self", "%")
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(r.Time) / float64(total)
		}
		dev := r.Device.String()
		if r.Kind != EventOp {
			dev = "host"
		}
		fmt.Fprintf(&b, "%-44s %-8s %-9s %6d %12s %6.2f%%\n",
			truncName(r.Name, 44), r.Kind, dev, r.Count, r.Time, pct)
	}
	fmt.Fprintf(&b, "%-44s %-8s %-9s %6s %12s %6.2f%%\n", "total (simulated)", "", "", "", total, 100.0)
	return b.String()
}

func truncName(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
