package soc

import (
	"repro/internal/relay"
	"repro/internal/tensor"
)

// Work summarizes the arithmetic and memory traffic of one kernel launch;
// the cost model consumes nothing else, so the same extraction serves the
// TVM engine, the NeuroPilot CPU engine and the APU.
type Work struct {
	OpName    string
	MACs      int64 // multiply-accumulates (or ALU ops for non-MAC kernels)
	Bytes     int64 // input + output + parameter traffic
	Quantized bool  // int8 path (uses the device's integer throughput)
}

// Add accumulates other into w.
func (w *Work) Add(o Work) {
	w.MACs += o.MACs
	w.Bytes += o.Bytes
	w.Quantized = w.Quantized || o.Quantized
}

func bytesOfType(t relay.Type) int64 {
	switch tt := t.(type) {
	case *relay.TensorType:
		return int64(tt.Shape.Elems()) * int64(tt.DType.Size())
	case *relay.TupleType:
		var n int64
		for _, f := range tt.Fields {
			n += bytesOfType(f)
		}
		return n
	}
	return 0
}

// WorkOf extracts the Work of a single type-checked operator call.
func WorkOf(call *relay.Call) Work {
	w := Work{OpName: call.OpName()}
	outT := call.CheckedType()
	w.Bytes = bytesOfType(outT)
	for _, a := range call.Args {
		w.Bytes += bytesOfType(a.CheckedType())
	}
	if ot, ok := outT.(*relay.TensorType); ok {
		w.Quantized = ot.DType.IsQuantized() || ot.DType == tensor.Int32 && ot.Quant != nil
	}
	if len(call.Args) > 0 {
		if at, ok := call.Args[0].CheckedType().(*relay.TensorType); ok && at.DType.IsQuantized() {
			w.Quantized = true
		}
	}

	outElems := int64(1)
	if ot, ok := outT.(*relay.TensorType); ok {
		outElems = int64(ot.Shape.Elems())
	}

	switch call.OpName() {
	case "nn.conv2d", "qnn.conv2d":
		wt := relay.TensorTypeOf(call.Args[1])
		kh, kw, icg := wt.Shape[1], wt.Shape[2], wt.Shape[3]
		w.MACs = outElems * int64(kh*kw*icg)
	case "nn.dense", "qnn.dense":
		wt := relay.TensorTypeOf(call.Args[1])
		w.MACs = outElems * int64(wt.Shape[1])
	case "nn.max_pool2d", "nn.avg_pool2d":
		kh, kw := call.Attrs.IntPair("pool_size", 1)
		w.MACs = outElems * int64(kh*kw)
	case "nn.global_avg_pool2d", "mean":
		in := relay.TensorTypeOf(call.Args[0])
		w.MACs = int64(in.Shape.Elems())
	case "nn.softmax":
		w.MACs = outElems * 8 // exp + normalize, transcendental-weighted
	case "sigmoid", "tanh", "exp", "sqrt":
		w.MACs = outElems * 8
	case "nn.batch_norm":
		w.MACs = outElems * 2
	case "nn.lrn":
		size := int64(call.Attrs.Int("size", 5))
		w.MACs = outElems * (size + 4)
	case "vision.yolo_output":
		w.MACs = outElems * 8
	default:
		// Elementwise / data movement: one ALU op per output element; the
		// roofline makes these memory-bound anyway.
		w.MACs = outElems
	}
	return w
}

// FunctionWork sums the work of every operator call in a function body
// (descending into fused Primitive sub-functions).
func FunctionWork(f *relay.Function) Work {
	var total Work
	relay.PostOrderVisit(f.Body, func(e relay.Expr) {
		if c, ok := e.(*relay.Call); ok && c.Op != nil {
			total.Add(WorkOf(c))
		}
	})
	total.OpName = "function"
	return total
}
