package soc

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Timeline is the virtual clock of the simulation. Each device is an
// exclusive resource: a task scheduled on it starts no earlier than both its
// dependencies and the device's previous task — which is exactly the
// exclusive-use constraint the paper's pipeline prototype (Figure 5) is
// built around.
type Timeline struct {
	mu     sync.Mutex
	avail  map[DeviceKind]Seconds
	events []Interval
}

// Interval is one scheduled occupancy of a device.
type Interval struct {
	Device DeviceKind
	Label  string
	Start  Seconds
	End    Seconds
}

// NewTimeline returns an empty timeline at virtual time zero.
func NewTimeline() *Timeline {
	return &Timeline{avail: map[DeviceKind]Seconds{}}
}

// Schedule places a task of the given duration on a device, starting no
// earlier than `ready` (its data dependencies) nor the device's availability.
// It returns the task's completion time.
func (tl *Timeline) Schedule(dev DeviceKind, label string, ready Seconds, dur Seconds) Seconds {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	start := ready
	if a := tl.avail[dev]; a > start {
		start = a
	}
	end := start + dur
	tl.avail[dev] = end
	tl.events = append(tl.events, Interval{Device: dev, Label: label, Start: start, End: end})
	return end
}

// ScheduleMulti atomically reserves several devices for one task (an
// exclusive multi-device stage, e.g. anti-spoofing on CPU+APU): the task
// starts when *all* devices are free and its dependencies are met, and
// occupies every device until it ends.
func (tl *Timeline) ScheduleMulti(devs []DeviceKind, label string, ready Seconds, dur Seconds) Seconds {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	start := ready
	for _, d := range devs {
		if a := tl.avail[d]; a > start {
			start = a
		}
	}
	end := start + dur
	for _, d := range devs {
		tl.avail[d] = end
		tl.events = append(tl.events, Interval{Device: d, Label: label, Start: start, End: end})
	}
	return end
}

// Avail returns the next free time of a device without scheduling anything.
func (tl *Timeline) Avail(dev DeviceKind) Seconds {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return tl.avail[dev]
}

// Now returns the maximum completion time across all devices (makespan).
func (tl *Timeline) Now() Seconds {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var m Seconds
	for _, v := range tl.avail {
		if v > m {
			m = v
		}
	}
	return m
}

// Events returns a copy of the recorded intervals in a stable order: sorted
// by start time, then device, with schedule order breaking remaining ties —
// the deterministic sequence trace export and the pipeline reports rely on.
func (tl *Timeline) Events() []Interval {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	out := append([]Interval(nil), tl.events...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Device < out[j].Device
	})
	return out
}

// Reset returns the timeline to virtual time zero, dropping every recorded
// interval and device availability — so one timeline can be reused across
// measurement windows.
func (tl *Timeline) Reset() {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	tl.events = tl.events[:0]
	for k := range tl.avail {
		delete(tl.avail, k)
	}
}

// BusyTime returns the total occupied time of one device.
func (tl *Timeline) BusyTime(dev DeviceKind) Seconds {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var t Seconds
	for _, e := range tl.events {
		if e.Device == dev {
			t += e.End - e.Start
		}
	}
	return t
}

// Gantt renders an ASCII Gantt chart of the timeline (one row per device),
// the textual analogue of the paper's Figure 5.
func (tl *Timeline) Gantt(width int) string {
	events := tl.Events()
	if len(events) == 0 {
		return "(empty timeline)\n"
	}
	total := tl.Now()
	if total <= 0 {
		total = 1e-9
	}
	if width <= 0 {
		width = 80
	}
	perDev := map[DeviceKind][]Interval{}
	for _, e := range events {
		perDev[e.Device] = append(perDev[e.Device], e)
	}
	kinds := make([]DeviceKind, 0, len(perDev))
	for k := range perDev {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "timeline 0 .. %s\n", total)
	for _, k := range kinds {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, e := range perDev[k] {
			lo := int(float64(e.Start) / float64(total) * float64(width))
			hi := int(float64(e.End) / float64(total) * float64(width))
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			mark := byte('#')
			if len(e.Label) > 0 {
				mark = e.Label[0]
			}
			for i := lo; i < hi; i++ {
				row[i] = mark
			}
		}
		fmt.Fprintf(&b, "%-4s |%s|\n", k, row)
	}
	return b.String()
}

// Profile accumulates per-device time and launch counts for one inference;
// the bench harness prints these as the per-model rows of Figures 4 and 6.
type Profile struct {
	mu         sync.Mutex
	DeviceTime map[DeviceKind]Seconds
	DMATime    Seconds
	// DispatchTime is host-side overhead for invoking external (NeuroPilot)
	// subgraphs — one runtime round-trip per subgraph. A graph shattered
	// into many regions pays this repeatedly (the paper's anti-spoofing
	// many-subgraphs pathology).
	DispatchTime Seconds
	Launches     map[DeviceKind]int
	Subgraphs    int // external (NeuroPilot) subgraph invocations

	// events, when non-nil (EnableEvents), records one labeled entry per
	// charge — the raw material of the per-op profile table (see trace.go).
	events []ProfileEvent
}

// SubgraphDispatchOverhead is the host cost of one external-runtime
// invocation (JNI/HAL round-trip in the real stack).
const SubgraphDispatchOverhead Seconds = 30e-6

// NewProfile returns an empty profile.
func NewProfile() *Profile {
	return &Profile{DeviceTime: map[DeviceKind]Seconds{}, Launches: map[DeviceKind]int{}}
}

// AddOp charges one kernel launch (unattributed; AddOpNamed records the op
// name into the event stream when profiling is enabled).
func (p *Profile) AddOp(dev DeviceKind, t Seconds) {
	p.AddOpNamed(dev, t, "(op)")
}

// AddDMA charges one boundary transfer.
func (p *Profile) AddDMA(t Seconds) {
	p.AddDMANamed(t, "(dma)")
}

// AddSubgraph counts one external subgraph invocation and charges its
// dispatch overhead.
func (p *Profile) AddSubgraph() {
	p.AddSubgraphNamed("(dispatch)")
}

// Total returns the summed sequential inference time (per-device time plus
// DMA), the quantity the paper's bar charts report per model/target.
func (p *Profile) Total() Seconds {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.DMATime + p.DispatchTime
	for _, v := range p.DeviceTime {
		t += v
	}
	return t
}

func (p *Profile) String() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var parts []string
	kinds := make([]DeviceKind, 0, len(p.DeviceTime))
	for k := range p.DeviceTime {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%s/%dops", k, p.DeviceTime[k], p.Launches[k]))
	}
	if p.DMATime > 0 {
		parts = append(parts, fmt.Sprintf("dma=%s", p.DMATime))
	}
	if p.Subgraphs > 0 {
		parts = append(parts, fmt.Sprintf("subgraphs=%d", p.Subgraphs))
	}
	return strings.Join(parts, " ")
}
