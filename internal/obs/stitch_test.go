package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// stitchedDoc decodes a stitched trace for assertions.
type stitchedDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		TS   int64          `json:"ts"`
		PID  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// exportPart serializes one hand-built wall-clock span whose Start is a µs
// offset from epoch — exactly what a Tracer in that process would produce.
func exportPart(t *testing.T, trackName, spanName string, start int64, epoch time.Time) []byte {
	t.Helper()
	spans := []Span{{Name: spanName, Cat: "test", PID: PIDWall, TID: 0, Start: start, Dur: 1000}}
	names := map[Thread]string{{PID: PIDWall, TID: 0}: trackName}
	var buf bytes.Buffer
	if err := WriteChromeTraceEpoch(&buf, spans, names, epoch); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestWriteChromeTraceEpochCarriesEpoch(t *testing.T) {
	epoch := time.UnixMicro(1_700_000_000_000_000)
	part := exportPart(t, "w", "s", 0, epoch)
	var doc struct {
		EpochUnixUs int64 `json:"epochUnixUs"`
	}
	if err := json.Unmarshal(part, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.EpochUnixUs != epoch.UnixMicro() {
		t.Fatalf("epochUnixUs = %d, want %d", doc.EpochUnixUs, epoch.UnixMicro())
	}
}

func TestStitchChromeTraces(t *testing.T) {
	// Router's epoch is 1s before worker's: after stitching, a worker span
	// starting at its local 0µs must land at +1s on the shared timeline.
	routerEpoch := time.UnixMicro(1_700_000_000_000_000)
	workerEpoch := routerEpoch.Add(time.Second)
	parts := []TracePart{
		{Label: "router", JSON: exportPart(t, "router", "route:emotion", 0, routerEpoch)},
		{Label: "worker w1", JSON: exportPart(t, "emotion/worker0", "execute:emotion", 0, workerEpoch)},
	}
	var buf bytes.Buffer
	if err := StitchChromeTraces(&buf, parts); err != nil {
		t.Fatal(err)
	}
	var doc stitchedDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	var routeTS, execTS int64 = -1, -1
	var routePID, execPID int
	procNames := map[int]string{}
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			procNames[ev.PID] = ev.Args["name"].(string)
		case ev.Name == "route:emotion":
			routeTS, routePID = ev.TS, ev.PID
		case ev.Name == "execute:emotion":
			execTS, execPID = ev.TS, ev.PID
		}
	}
	if routeTS < 0 || execTS < 0 {
		t.Fatalf("stitched trace lost spans: %+v", doc.TraceEvents)
	}
	// Disjoint PID blocks: part 0 keeps PIDWall, part 1 is shifted.
	if routePID != PIDWall || execPID != pidStride+PIDWall {
		t.Errorf("pids = %d/%d, want %d/%d", routePID, execPID, PIDWall, pidStride+PIDWall)
	}
	// Epoch alignment: worker span is 1s after the router span.
	if execTS-routeTS != time.Second.Microseconds() {
		t.Errorf("worker span at %dµs vs router %dµs: want 1s apart", execTS, routeTS)
	}
	// Process names carry the part labels.
	if got := procNames[PIDWall]; got != "router: wall clock" {
		t.Errorf("router process name %q", got)
	}
	if got := procNames[pidStride+PIDWall]; got != "worker w1: wall clock" {
		t.Errorf("worker process name %q", got)
	}
}

func TestStitchChromeTracesBadPart(t *testing.T) {
	err := StitchChromeTraces(&bytes.Buffer{}, []TracePart{{Label: "w", JSON: []byte("not json")}})
	if err == nil {
		t.Fatal("garbage part did not abort the stitch")
	}
}

func TestStitchChromeTracesSimClockUnshifted(t *testing.T) {
	// A simulated-clock span (PIDSim) is virtual time: stitching must remap
	// its PID but never shift its timestamps.
	epoch := time.UnixMicro(1_700_000_000_000_000)
	spans := []Span{{Name: "apu", PID: PIDSim, TID: 0, Start: 42, Dur: 10}}
	var part bytes.Buffer
	if err := WriteChromeTraceEpoch(&part, spans, nil, epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	parts := []TracePart{
		{Label: "router", JSON: exportPart(t, "r", "route", 0, epoch)},
		{Label: "worker", JSON: part.Bytes()},
	}
	var buf bytes.Buffer
	if err := StitchChromeTraces(&buf, parts); err != nil {
		t.Fatal(err)
	}
	var doc stitchedDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "apu" {
			if ev.TS != 42 || ev.PID != pidStride+PIDSim {
				t.Fatalf("sim span ts=%d pid=%d, want ts=42 pid=%d", ev.TS, ev.PID, pidStride+PIDSim)
			}
			return
		}
	}
	t.Fatal("sim span lost in stitch")
}
