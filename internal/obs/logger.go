package obs

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Logger is the binaries' structured logger: leveled, key=value, and
// trace-ID-aware, so every request-scoped line carries the trace ID that
// links it to /tracez and /debugz/requests. It replaces ad-hoc printf
// logging in npserve/nprouter; one line looks like
//
//	2026-08-09T12:00:01.234Z INFO npserve deployed model model=emotion version=v1
//	2026-08-09T12:00:02.456Z WARN nprouter retrying trace=4f2a… worker=d9000-1
//
// Values are quoted only when they contain spaces, quotes, or '=' so the
// output stays grep- and cut-friendly.

// Level orders log severities.
type Level int

// Levels, in increasing severity.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "DEBUG"
	case LevelInfo:
		return "INFO"
	case LevelWarn:
		return "WARN"
	case LevelError:
		return "ERROR"
	}
	return fmt.Sprintf("LEVEL(%d)", int(l))
}

// ParseLevel maps a -log-level flag value to a Level. The empty string means
// LevelInfo.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "", "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// Logger writes leveled key=value lines. Safe for concurrent use; the zero
// value and nil are no-ops.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	name  string
	min   Level
	kv    []string // pre-rendered "k=v" pairs bound by With
	clock func() time.Time
}

// NewLogger returns a logger writing to w, tagging every line with name
// (the binary), at minimum level min.
func NewLogger(w io.Writer, name string, min Level) *Logger {
	return &Logger{w: w, name: name, min: min, clock: time.Now}
}

// SetClock overrides the timestamp source (tests).
func (l *Logger) SetClock(clock func() time.Time) {
	if l != nil {
		l.mu.Lock()
		l.clock = clock
		l.mu.Unlock()
	}
}

// With returns a child logger whose lines always carry the given key=value
// pairs (alternating key, value, like obs.L).
func (l *Logger) With(kv ...any) *Logger {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	child := &Logger{w: l.w, name: l.name, min: l.min, clock: l.clock}
	child.kv = append(append([]string(nil), l.kv...), renderPairs(kv)...)
	return child
}

// WithTrace returns a child logger stamped with ctx's trace ID (the logger
// itself when ctx is untraced) — the request-scoped logging entry point.
func (l *Logger) WithTrace(ctx context.Context) *Logger {
	tc, ok := TraceFrom(ctx)
	if !ok {
		return l
	}
	return l.With(TraceArg, tc.TraceID)
}

// Debug/Info/Warn/Error log one line at their level; kv are alternating
// key, value pairs appended after the message.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }
func (l *Logger) Info(msg string, kv ...any)  { l.log(LevelInfo, msg, kv) }
func (l *Logger) Warn(msg string, kv ...any)  { l.log(LevelWarn, msg, kv) }
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(lv Level, msg string, kv []any) {
	if l == nil || l.w == nil || lv < l.min {
		return
	}
	var b strings.Builder
	l.mu.Lock()
	b.WriteString(l.clock().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteByte(' ')
	b.WriteString(lv.String())
	b.WriteByte(' ')
	b.WriteString(l.name)
	b.WriteByte(' ')
	b.WriteString(msg)
	for _, p := range l.kv {
		b.WriteByte(' ')
		b.WriteString(p)
	}
	for _, p := range renderPairs(kv) {
		b.WriteByte(' ')
		b.WriteString(p)
	}
	b.WriteByte('\n')
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// renderPairs turns alternating key, value arguments into "k=v" strings; a
// trailing odd value is rendered under the key "!MISSING".
func renderPairs(kv []any) []string {
	if len(kv) == 0 {
		return nil
	}
	out := make([]string, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		val := "!MISSING"
		if i+1 < len(kv) {
			val = logValue(kv[i+1])
		}
		out = append(out, key+"="+val)
	}
	return out
}

// logValue renders one value, quoting only when needed.
func logValue(v any) string {
	s := fmt.Sprint(v)
	if s == "" || strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}
