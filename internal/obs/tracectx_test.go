package obs

import (
	"context"
	"testing"
)

func TestMintTraceShape(t *testing.T) {
	tc := MintTrace()
	if !tc.Valid() {
		t.Fatalf("minted context invalid: %+v", tc)
	}
	if len(tc.TraceID) != 32 || len(tc.SpanID) != 16 {
		t.Fatalf("trace id %q span id %q: want 32/16 hex chars", tc.TraceID, tc.SpanID)
	}
	if tc2 := MintTrace(); tc2.TraceID == tc.TraceID {
		t.Fatalf("two mints produced the same trace id %q", tc.TraceID)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	tc := MintTrace()
	got, ok := ParseTraceContext(tc.String())
	if !ok || got != tc {
		t.Fatalf("round trip: got %+v ok=%v, want %+v", got, ok, tc)
	}
}

func TestChildKeepsTraceID(t *testing.T) {
	tc := MintTrace()
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Errorf("child trace id %q != parent %q", child.TraceID, tc.TraceID)
	}
	if child.SpanID == tc.SpanID {
		t.Errorf("child span id %q did not change", child.SpanID)
	}
	if !child.Valid() {
		t.Errorf("child invalid: %+v", child)
	}
}

func TestParseTraceContextRejectsMalformed(t *testing.T) {
	for _, s := range []string{
		"",
		"nodash",
		"short-short",
		"0123456789abcdef0123456789abcdef", // no span id
		"0123456789abcdef0123456789abcdeX-0123456789abcdef",   // non-hex trace
		"0123456789ABCDEF0123456789abcdef-0123456789abcdef",   // uppercase
		"0123456789abcdef0123456789abcdef-0123456789abcde",    // 15-char span
		"0123456789abcdef0123456789abcdef-0123456789abcdef-x", // trailing junk
	} {
		if tc, ok := ParseTraceContext(s); ok {
			t.Errorf("ParseTraceContext(%q) accepted: %+v", s, tc)
		}
	}
}

func TestTraceContextViaContext(t *testing.T) {
	if _, ok := TraceFrom(context.Background()); ok {
		t.Fatal("untraced context reported a trace")
	}
	tc := MintTrace()
	ctx := WithTrace(context.Background(), tc)
	got, ok := TraceFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceFrom = %+v ok=%v, want %+v", got, ok, tc)
	}
}

func TestFilterByTraceID(t *testing.T) {
	id := "0123456789abcdef0123456789abcdef"
	spans := []Span{
		{Name: "a", Args: []Arg{A(TraceArg, id)}},
		{Name: "b", Args: []Arg{A(TraceArg, "ffffffffffffffffffffffffffffffff")}},
		{Name: "c"}, // untagged
		{Name: "d", Args: []Arg{A("batch", 3), A(TraceArg, id)}},
		{Name: "e", Args: []Arg{A(TraceArg, 42)}}, // non-string value
	}
	got := FilterByTraceID(spans, id)
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "d" {
		t.Fatalf("filtered %v, want spans a and d", got)
	}
}

func TestValidTraceID(t *testing.T) {
	if err := ValidTraceID(MintTrace().TraceID); err != nil {
		t.Errorf("minted trace id rejected: %v", err)
	}
	for _, bad := range []string{"", "xyz", "0123456789abcdef"} {
		if err := ValidTraceID(bad); err == nil {
			t.Errorf("ValidTraceID(%q) accepted", bad)
		}
	}
}
