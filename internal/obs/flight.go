package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// FlightRecorder is the per-process answer to "why was this one inference
// slow?": a fixed-size ring of per-request records (trace ID, model, timing
// split, batch size, status) that is always on in production, plus a slow
// lane that retains the worst-N requests past a latency threshold even after
// the main ring has wrapped many times. /debugz/requests dumps both lanes;
// each record's trace ID links into /tracez?id= for the full span view.
//
// The hot path is non-blocking and allocation-free: writers claim a slot
// with one atomic increment and take the slot's lock only with TryLock — a
// writer that loses the (vanishingly rare) race for a slot drops its record
// and bumps a counter instead of ever waiting. When recording is disabled
// the path is a single atomic load (pinned by BenchmarkFlightRecorderOverhead
// and TestFlightRecorderDisabledZeroAlloc).

// FlightRecord is one request's black-box entry. String fields share the
// caller's backing arrays (no copies), so recording allocates nothing.
type FlightRecord struct {
	// Seq is the recorder-assigned admission order (monotonic).
	Seq uint64 `json:"seq"`
	// UnixMicro is the completion wall time in microseconds since the epoch.
	UnixMicro int64 `json:"unix_us"`
	// TraceID links the record to its distributed trace ("" if untraced).
	TraceID string `json:"trace_id,omitempty"`
	// Model is the serving endpoint name (model@version for registry deploys).
	Model string `json:"model"`
	// Worker is the fleet device key of the process that served the request
	// ("" when the worker never joined a fleet).
	Worker string `json:"worker,omitempty"`
	// Status is the outcome: "ok", "failed", or "expired".
	Status string `json:"status"`
	// BatchSize is the coalesced micro-batch the request rode in.
	BatchSize int `json:"batch_size"`
	// QueueMs/ExecMs/TotalMs split the request's wall time: admission queue
	// (including the batch window), its own Run, and end-to-end.
	QueueMs float64 `json:"queue_ms"`
	ExecMs  float64 `json:"exec_ms"`
	TotalMs float64 `json:"total_ms"`
	// Devices is the exclusive simulated device set, comma-joined (computed
	// once per endpoint, shared by every record).
	Devices string `json:"devices,omitempty"`
}

type flightSlot struct {
	mu   sync.Mutex
	full bool
	rec  FlightRecord
}

// FlightRecorder retains the most recent capacity records plus the worst
// slowN records at or above slowMs end-to-end latency. The zero threshold
// disables the slow lane. All methods are safe on a nil receiver.
type FlightRecorder struct {
	enabled atomic.Bool
	cursor  atomic.Uint64
	dropped atomic.Uint64
	slots   []flightSlot

	slowMs  float64
	slowMax int
	slowMu  sync.Mutex
	slow    []FlightRecord
}

// NewFlightRecorder builds a recorder holding the latest capacity records
// (default 256) and the worst slowN (default 16) at or above slowMs.
// Recording starts enabled.
func NewFlightRecorder(capacity, slowN int, slowMs float64) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	if slowN <= 0 {
		slowN = 16
	}
	f := &FlightRecorder{
		slots:   make([]flightSlot, capacity),
		slowMs:  slowMs,
		slowMax: slowN,
		slow:    make([]FlightRecord, 0, slowN),
	}
	f.enabled.Store(true)
	return f
}

// SetEnabled turns recording on or off; off reduces Record to one atomic
// load (the always-on production default is on — the ring is cheap).
func (f *FlightRecorder) SetEnabled(on bool) {
	if f != nil {
		f.enabled.Store(on)
	}
}

// Enabled reports whether records are being retained.
func (f *FlightRecorder) Enabled() bool { return f != nil && f.enabled.Load() }

// SlowThresholdMs returns the slow-lane latency threshold (0 = lane off).
func (f *FlightRecorder) SlowThresholdMs() float64 {
	if f == nil {
		return 0
	}
	return f.slowMs
}

// Dropped counts records lost to slot contention (a writer lapped the ring
// into a slot another writer still held).
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	return f.dropped.Load()
}

// Record retains one request record. Non-blocking and allocation-free; a
// no-op when disabled or on a nil recorder.
//
//np:hotpath
func (f *FlightRecorder) Record(rec FlightRecord) {
	if f == nil || !f.enabled.Load() {
		return
	}
	seq := f.cursor.Add(1) - 1
	rec.Seq = seq
	s := &f.slots[seq%uint64(len(f.slots))]
	if s.mu.TryLock() {
		s.rec = rec
		s.full = true
		s.mu.Unlock()
	} else {
		f.dropped.Add(1)
	}
	if f.slowMs > 0 && rec.TotalMs >= f.slowMs {
		f.recordSlow(rec)
	}
}

// recordSlow keeps the worst slowMax records by TotalMs. Slow requests are
// rare by definition, so a mutex (and the O(slowMax) scan) is fine here.
func (f *FlightRecorder) recordSlow(rec FlightRecord) {
	f.slowMu.Lock()
	defer f.slowMu.Unlock()
	if len(f.slow) < f.slowMax {
		f.slow = append(f.slow, rec) //np:alloc-ok within preallocated slow-lane capacity
		return
	}
	min := 0
	for i := 1; i < len(f.slow); i++ {
		if f.slow[i].TotalMs < f.slow[min].TotalMs {
			min = i
		}
	}
	if rec.TotalMs > f.slow[min].TotalMs {
		f.slow[min] = rec
	}
}

// Snapshot copies the main ring's retained records, oldest first.
func (f *FlightRecorder) Snapshot() []FlightRecord {
	if f == nil {
		return nil
	}
	out := make([]FlightRecord, 0, len(f.slots))
	for i := range f.slots {
		s := &f.slots[i]
		s.mu.Lock()
		if s.full {
			out = append(out, s.rec)
		}
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Slow copies the slow lane, worst (highest TotalMs) first.
func (f *FlightRecorder) Slow() []FlightRecord {
	if f == nil {
		return nil
	}
	f.slowMu.Lock()
	out := append([]FlightRecord(nil), f.slow...)
	f.slowMu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMs != out[j].TotalMs {
			return out[i].TotalMs > out[j].TotalMs
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
