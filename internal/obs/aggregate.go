package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Fleet-level metric aggregation: the router scrapes each worker's /metricsz
// (Prometheus text exposition, the format WritePrometheus emits), injects a
// worker="<key>" label into every sample so per-worker series stay
// distinguishable, and merges the family blocks — one # HELP/# TYPE header
// per metric name fleet-wide, samples from every worker beneath it.

// Merger accumulates relabeled expositions from many sources and renders
// them as one combined exposition. It is not safe for concurrent use; build
// a fresh Merger per aggregation pass.
type Merger struct {
	order []string
	fams  map[string]*mergedFamily
}

type mergedFamily struct {
	name, help, typ string
	samples         []string
}

// NewMerger returns an empty exposition merger.
func NewMerger() *Merger {
	return &Merger{fams: map[string]*mergedFamily{}}
}

// Add parses one exposition and folds it in, injecting label key=value into
// every sample line (pass key == "" to merge without relabeling). The first
// source to declare a family's HELP/TYPE wins; later conflicting TYPE
// declarations are an error because mixing types under one name would
// corrupt the merged exposition.
func (m *Merger) Add(key, value string, exposition []byte) error {
	sc := bufio.NewScanner(bytes.NewReader(exposition))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var cur *mergedFamily
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), " \t")
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			name, text := splitMeta(line[len("# HELP "):])
			cur = m.family(name)
			if cur.help == "" {
				cur.help = text
			}
		case strings.HasPrefix(line, "# TYPE "):
			name, typ := splitMeta(line[len("# TYPE "):])
			cur = m.family(name)
			if cur.typ == "" {
				cur.typ = typ
			} else if cur.typ != typ {
				return fmt.Errorf("obs: merge: metric %q declared %s and %s", name, cur.typ, typ)
			}
		case strings.HasPrefix(line, "#"):
			continue // other comments
		default:
			sample := line
			if key != "" {
				var err error
				if sample, err = InjectLabel(line, key, value); err != nil {
					return fmt.Errorf("obs: merge: %w", err)
				}
			}
			// Histogram sample names carry _bucket/_sum/_count suffixes; the
			// preceding TYPE line already bound cur to the family, and our
			// exposition always emits TYPE before samples. A sample with no
			// prior header (foreign exposition) gets a family of its own name.
			fam := cur
			if fam == nil || !sampleBelongs(sampleName(line), fam.name) {
				fam = m.family(sampleName(line))
			}
			fam.samples = append(fam.samples, sample)
		}
	}
	return sc.Err()
}

// WriteTo renders the merged exposition: families in first-seen order, one
// HELP/TYPE header each, samples in the order they were added.
func (m *Merger) WriteTo(w io.Writer) (int64, error) {
	var n int64
	for _, name := range m.order {
		f := m.fams[name]
		if len(f.samples) == 0 {
			continue
		}
		if f.help != "" {
			c, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
		if f.typ != "" {
			c, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
		for _, s := range f.samples {
			c, err := fmt.Fprintln(w, s)
			n += int64(c)
			if err != nil {
				return n, err
			}
		}
	}
	return n, nil
}

func (m *Merger) family(name string) *mergedFamily {
	f, ok := m.fams[name]
	if !ok {
		f = &mergedFamily{name: name}
		m.fams[name] = f
		m.order = append(m.order, name)
	}
	return f
}

func splitMeta(rest string) (name, text string) {
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		return rest[:i], rest[i+1:]
	}
	return rest, ""
}

// sampleName extracts the metric name of a sample line (everything before
// the first '{' or space).
func sampleName(line string) string {
	for i := 0; i < len(line); i++ {
		if !isNameByte(line[i]) {
			return line[:i]
		}
	}
	return line
}

// sampleBelongs reports whether a sample name is part of family fam —
// either the name itself or a histogram/summary suffix of it.
func sampleBelongs(name, fam string) bool {
	if name == fam {
		return true
	}
	if !strings.HasPrefix(name, fam) {
		return false
	}
	switch name[len(fam):] {
	case "_bucket", "_sum", "_count":
		return true
	}
	return false
}

func isNameByte(b byte) bool {
	return b == '_' || b == ':' ||
		(b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z') || (b >= '0' && b <= '9')
}

// InjectLabel rewrites one sample line to carry an extra key="value" label,
// preserving existing labels: `m{a="b"} 1` → `m{key="value",a="b"} 1` and
// `m 1` → `m{key="value"} 1`. Label values containing '}' or ',' inside
// quotes are handled because the insertion point is right after the metric
// name, never inside the label body.
func InjectLabel(line, key, value string) (string, error) {
	i := 0
	for i < len(line) && isNameByte(line[i]) {
		i++
	}
	if i == 0 {
		return "", fmt.Errorf("sample line %q has no metric name", line)
	}
	pair := fmt.Sprintf("%s=%q", key, value)
	switch {
	case i < len(line) && line[i] == '{':
		if i+1 < len(line) && line[i+1] == '}' { // empty label set
			return line[:i+1] + pair + line[i+1:], nil
		}
		return line[:i+1] + pair + "," + line[i+1:], nil
	case i < len(line) && line[i] == ' ':
		return line[:i] + "{" + pair + "}" + line[i:], nil
	default:
		return "", fmt.Errorf("malformed sample line %q", line)
	}
}
