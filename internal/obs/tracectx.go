package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
	"sync/atomic"
)

// Distributed trace context: since the fleet tier a request's life spans
// processes (router → worker → pool worker → batch → kernels), so a span's
// identity must survive the hop. The context is deliberately tiny — a
// Dapper-style (trace ID, span ID) pair carried in one HTTP header and in
// context.Context — and every span recorded on the request path is stamped
// with the trace ID as an Arg, so per-process ring buffers can be filtered
// and stitched into one cross-process trace afterwards (StitchChromeTraces).

// TraceHeader is the HTTP header carrying a TraceContext across process
// boundaries: "<32 hex trace id>-<16 hex span id>". The first edge (router
// or a directly-hit worker) mints the context when the header is absent, and
// every response is stamped with the same header so callers can fetch the
// stitched trace later (GET /tracez?id=<trace id>).
const TraceHeader = "X-NP-Trace-Context"

// TraceContext identifies one request fleet-wide: TraceID names the whole
// request tree (16 random bytes, lowercase hex), SpanID the edge that minted
// or forwarded it (8 random bytes, lowercase hex). The zero value means "no
// trace" and is what TraceFrom returns for un-traced contexts.
type TraceContext struct {
	TraceID string
	SpanID  string
}

// Valid reports whether the context carries a well-formed trace ID.
func (tc TraceContext) Valid() bool {
	return isHex(tc.TraceID, 32) && isHex(tc.SpanID, 16)
}

// String renders the context in TraceHeader wire format.
func (tc TraceContext) String() string {
	if !tc.Valid() {
		return ""
	}
	return tc.TraceID + "-" + tc.SpanID
}

// entropy decouples ID minting from crypto/rand syscall cost: one seed read
// at first use, then a counter mixed with splitmix64. IDs need uniqueness,
// not unpredictability.
var entropySeed atomic.Uint64

func nextRand() uint64 {
	for {
		seed := entropySeed.Load()
		if seed != 0 {
			// splitmix64 over a monotonically increasing counter: distinct
			// inputs give distinct, well-mixed outputs.
			z := entropySeed.Add(0x9e3779b97f4a7c15)
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Fall back to a fixed nonzero seed; uniqueness within the
			// process still holds via the counter.
			b = [8]byte{1, 2, 3, 4, 5, 6, 7, 8}
		}
		v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
			uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
		if v == 0 {
			v = 0x9e3779b97f4a7c15
		}
		entropySeed.CompareAndSwap(0, v)
	}
}

// MintTrace creates a fresh trace context — call at the first edge a request
// crosses (the router, or a worker hit directly).
func MintTrace() TraceContext {
	var tid [16]byte
	hi, lo := nextRand(), nextRand()
	for i := 0; i < 8; i++ {
		tid[i] = byte(hi >> (8 * i))
		tid[8+i] = byte(lo >> (8 * i))
	}
	var sid [8]byte
	s := nextRand()
	for i := 0; i < 8; i++ {
		sid[i] = byte(s >> (8 * i))
	}
	return TraceContext{TraceID: hex.EncodeToString(tid[:]), SpanID: hex.EncodeToString(sid[:])}
}

// Child keeps the trace ID and mints a new span ID — what a hop stamps on
// the header it forwards downstream, so each edge is distinguishable.
func (tc TraceContext) Child() TraceContext {
	var sid [8]byte
	s := nextRand()
	for i := 0; i < 8; i++ {
		sid[i] = byte(s >> (8 * i))
	}
	return TraceContext{TraceID: tc.TraceID, SpanID: hex.EncodeToString(sid[:])}
}

// ParseTraceContext decodes the TraceHeader wire format. ok is false for
// absent or malformed values (the caller should mint a fresh context).
func ParseTraceContext(s string) (TraceContext, bool) {
	i := strings.IndexByte(s, '-')
	if i < 0 {
		return TraceContext{}, false
	}
	tc := TraceContext{TraceID: s[:i], SpanID: s[i+1:]}
	if !tc.Valid() {
		return TraceContext{}, false
	}
	return tc, true
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

type traceCtxKey struct{}

// WithTrace attaches a trace context to ctx; request-scoped code (serve's
// Submit, the batch workers) recovers it with TraceFrom.
func WithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceFrom recovers the request's trace context (zero value, false when the
// context was never traced).
func TraceFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}

// TraceArg is the span Arg key carrying a trace ID; FilterByTraceID selects
// on it when /tracez?id= narrows an export to one request.
const TraceArg = "trace"

// FilterByTraceID keeps the spans stamped with the given trace ID (an Arg
// with key TraceArg and exactly this value). A span may carry several trace
// args — batch-level spans are stamped once per coalesced request — and
// matches if any of them equals id.
func FilterByTraceID(spans []Span, id string) []Span {
	var out []Span
	for _, s := range spans {
		for _, a := range s.Args {
			if a.Key == TraceArg {
				if v, ok := a.Val.(string); ok && v == id {
					out = append(out, s)
					break
				}
			}
		}
	}
	return out
}

// ValidTraceID rejects malformed ?id= filter values for HTTP handlers.
func ValidTraceID(id string) error {
	if !isHex(id, 32) {
		return fmt.Errorf("obs: trace id %q is not 32 lowercase hex chars", id)
	}
	return nil
}
