// Package obs is the observability layer of the stack: a low-overhead span
// tracer and a dependency-free metrics registry, shared by the compiler
// (per-pass spans), the executors (per-node spans and per-op simulated-time
// attribution) and the serving layer (queue/execute spans feeding latency
// histograms). Traces export as Chrome trace_event JSON — loadable in
// chrome://tracing or Perfetto — or as a plain-text tree; metrics export in
// Prometheus text format (npserve's /metricsz).
//
// Two clock domains coexist in one trace, separated as processes: wall-clock
// spans (what this host actually did) and simulated-clock spans derived from
// soc.Timeline events or soc.Profile attributions (what the modeled SoC did).
// See DESIGN.md §9 for how to read a showcase trace.
//
// The package deliberately imports nothing from the rest of the repository,
// so every layer — including internal/soc — can depend on it.
package obs

import (
	"sync"
	"time"
)

// Process IDs partition one exported trace into Perfetto "processes", one per
// clock domain (plus one for the executor's per-node spans, whose track IDs
// are wavefront lanes rather than tracer tracks).
const (
	// PIDWall is the wall-clock domain of tracer tracks (compile passes,
	// serving workers).
	PIDWall = 1
	// PIDSim is the simulated clock domain: spans derived from soc.Timeline
	// intervals or sequential soc.Profile attributions. Timestamps are
	// virtual seconds, not host time.
	PIDSim = 2
	// PIDExec is the wall-clock domain of per-node executor spans; its track
	// IDs are wavefront lanes, so concurrently executed nodes render on
	// separate rows.
	PIDExec = 3
)

// Arg is one span annotation (Chrome trace "args" entry).
type Arg struct {
	Key string
	Val any
}

// A(key, val) builds one span annotation.
func A(key string, val any) Arg { return Arg{Key: key, Val: val} }

// Span is one timed event. Start and Dur are microseconds in the clock
// domain selected by PID: offsets from the tracer epoch for wall-clock
// spans, virtual microseconds for simulated-clock spans.
type Span struct {
	Name  string
	Cat   string
	PID   int
	TID   int
	Start int64 // µs
	Dur   int64 // µs
	Args  []Arg
}

// End returns the span's end timestamp in microseconds.
func (s Span) End() int64 { return s.Start + s.Dur }

// Thread identifies one row of a trace (a Perfetto thread).
type Thread struct {
	PID int
	TID int
}

// Tracer owns a set of ring-buffered tracks sharing one wall-clock epoch.
// Each concurrent writer (a serving worker, the compile pipeline) holds its
// own Track, so appends never contend across goroutines; the per-track ring
// bounds memory however long the process traces.
type Tracer struct {
	mu       sync.Mutex
	epoch    time.Time
	capacity int
	tracks   []*Track
}

// NewTracer returns a tracer whose tracks hold the most recent capacity
// spans each (default 1024 when capacity <= 0). The epoch — timestamp zero
// of every wall-clock span — is the call time.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{epoch: time.Now(), capacity: capacity}
}

// Epoch returns the tracer's timestamp zero.
func (t *Tracer) Epoch() time.Time { return t.epoch }

// NewTrack adds a named track. Tracks are meant to be goroutine-private:
// one per worker, so span appends are uncontended.
func (t *Tracer) NewTrack(name string) *Track {
	t.mu.Lock()
	defer t.mu.Unlock()
	tk := &Track{tracer: t, name: name, tid: len(t.tracks), ring: make([]Span, 0, t.capacity)}
	t.tracks = append(t.tracks, tk)
	return tk
}

// Snapshot copies every track's retained spans (oldest first per track) and
// the track-name map for export.
func (t *Tracer) Snapshot() ([]Span, map[Thread]string) {
	t.mu.Lock()
	tracks := append([]*Track(nil), t.tracks...)
	t.mu.Unlock()
	var spans []Span
	names := make(map[Thread]string, len(tracks))
	for _, tk := range tracks {
		names[Thread{PID: PIDWall, TID: tk.tid}] = tk.name
		spans = append(spans, tk.snapshot()...)
	}
	return spans, names
}

// Reset drops every track's retained spans (the tracks themselves and the
// epoch stay).
func (t *Tracer) Reset() {
	t.mu.Lock()
	tracks := append([]*Track(nil), t.tracks...)
	t.mu.Unlock()
	for _, tk := range tracks {
		tk.mu.Lock()
		tk.ring = tk.ring[:0]
		tk.next = 0
		tk.wrapped = false
		tk.mu.Unlock()
	}
}

// Track is one writer's span ring. All methods are safe on a nil receiver
// (no-ops), so instrumented code paths need no "tracing enabled?" branches.
type Track struct {
	tracer *Tracer
	name   string
	tid    int

	mu      sync.Mutex
	ring    []Span
	next    int
	wrapped bool
}

// Mark is an open span: Begin captures the start, End writes the record.
// It is a value, so Begin/End pairs allocate nothing beyond the span's Args.
type Mark struct {
	name  string
	cat   string
	start time.Time
}

// Begin opens a span at the current wall clock.
//
//np:hotpath
func (tk *Track) Begin(name, cat string) Mark {
	return Mark{name: name, cat: cat, start: time.Now()}
}

// End closes a span opened by Begin.
//
//np:hotpath
func (tk *Track) End(m Mark, args ...Arg) {
	if tk == nil {
		return
	}
	tk.Emit(m.name, m.cat, m.start, time.Since(m.start), args...)
}

// Emit records a span retroactively from an absolute start time — used for
// intervals measured elsewhere (a request's time-in-queue, a pass already
// timed by its runner).
//
//np:hotpath
func (tk *Track) Emit(name, cat string, start time.Time, dur time.Duration, args ...Arg) {
	if tk == nil {
		return
	}
	sp := Span{
		Name:  name,
		Cat:   cat,
		PID:   PIDWall,
		TID:   tk.tid,
		Start: start.Sub(tk.tracer.epoch).Microseconds(),
		Dur:   dur.Microseconds(),
		Args:  args,
	}
	tk.mu.Lock()
	if len(tk.ring) < cap(tk.ring) {
		tk.ring = append(tk.ring, sp) //np:alloc-ok within preallocated ring capacity
	} else {
		// Ring full: overwrite the oldest span.
		tk.ring[tk.next] = sp
		tk.wrapped = true
	}
	tk.next = (tk.next + 1) % cap(tk.ring)
	tk.mu.Unlock()
}

// Len reports how many spans the track currently retains.
func (tk *Track) Len() int {
	if tk == nil {
		return 0
	}
	tk.mu.Lock()
	defer tk.mu.Unlock()
	return len(tk.ring)
}

// snapshot copies the retained spans oldest-first.
func (tk *Track) snapshot() []Span {
	tk.mu.Lock()
	defer tk.mu.Unlock()
	out := make([]Span, 0, len(tk.ring))
	if tk.wrapped {
		out = append(out, tk.ring[tk.next:]...)
	}
	out = append(out, tk.ring[:tk.next]...)
	if !tk.wrapped && tk.next == 0 {
		out = append(out, tk.ring...)
	}
	return out
}
