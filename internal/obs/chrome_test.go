package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSpans is a deterministic two-clock-domain trace: a compile span and
// a serving span on wall-clock tracks, plus two device rows on the simulated
// clock. Deliberately appended out of order to pin the export's sorting.
func goldenSpans() ([]Span, map[Thread]string) {
	spans := []Span{
		{Name: "apu op", Cat: "sim", PID: PIDSim, TID: 2, Start: 100, Dur: 700},
		{Name: "FuseOps", Cat: "pass", PID: PIDWall, TID: 0, Start: 10, Dur: 40,
			Args: []Arg{A("ops_before", 12), A("ops_after", 9)}},
		{Name: "cpu op", Cat: "sim", PID: PIDSim, TID: 1, Start: 0, Dur: 100},
		{Name: "execute:emotion", Cat: "serve", PID: PIDWall, TID: 1, Start: 200, Dur: 300},
	}
	names := map[Thread]string{
		{PID: PIDWall, TID: 0}: "compile",
		{PID: PIDWall, TID: 1}: "emotion/worker0",
		{PID: PIDSim, TID: 1}:  "cpu",
		{PID: PIDSim, TID: 2}:  "apu",
	}
	return spans, names
}

func TestWriteChromeTraceGolden(t *testing.T) {
	spans, names := goldenSpans()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, names); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run `go test -run Golden -update` to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace differs from golden:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWriteChromeTraceStructure(t *testing.T) {
	spans, names := goldenSpans()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, names); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("output is not valid JSON")
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  *int64         `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur == nil {
				t.Errorf("complete event %q has no dur", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	// 2 process_name + 4 thread_name metadata records, then the 4 spans.
	if meta != 6 || complete != 4 {
		t.Errorf("got %d metadata + %d complete events, want 6 + 4", meta, complete)
	}
	// Spans are sorted (pid, tid, start) after the metadata block.
	last := doc.TraceEvents[len(doc.TraceEvents)-1]
	if last.PID != PIDSim || last.Name != "apu op" {
		t.Errorf("last event = %q pid %d, want the apu span on pid %d", last.Name, last.PID, PIDSim)
	}
	// Args survive the round trip.
	for _, ev := range doc.TraceEvents {
		if ev.Name == "FuseOps" {
			if ev.Args["ops_before"] != float64(12) || ev.Args["ops_after"] != float64(9) {
				t.Errorf("FuseOps args = %v", ev.Args)
			}
		}
	}
}

func TestTreeDump(t *testing.T) {
	spans := []Span{
		{Name: "parent", Cat: "test", PID: PIDWall, TID: 0, Start: 0, Dur: 100},
		{Name: "child", Cat: "test", PID: PIDWall, TID: 0, Start: 10, Dur: 20},
		{Name: "sibling", Cat: "test", PID: PIDWall, TID: 0, Start: 40, Dur: 30},
		{Name: "after", Cat: "test", PID: PIDWall, TID: 0, Start: 200, Dur: 10},
	}
	out := TreeDump(spans, map[Thread]string{{PID: PIDWall, TID: 0}: "main"})
	if !strings.Contains(out, "[main]") {
		t.Errorf("dump missing thread header:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	indent := map[string]int{}
	for _, ln := range lines[1:] {
		name := strings.Fields(ln)[0]
		indent[name] = len(ln) - len(strings.TrimLeft(ln, " "))
	}
	if indent["child"] <= indent["parent"] || indent["sibling"] <= indent["parent"] {
		t.Errorf("children not nested under parent:\n%s", out)
	}
	if indent["after"] != indent["parent"] {
		t.Errorf("span outside parent's interval should not nest:\n%s", out)
	}
}
