package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns the net/http/pprof surface rooted at /debug/pprof/.
// The binaries mount it behind an opt-in -pprof flag instead of importing the
// package for its DefaultServeMux side effect, so profiling endpoints are
// never exposed by accident.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
