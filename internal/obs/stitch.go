package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Cross-process trace stitching: the router fetches each worker's /tracez
// ring (already filtered to one trace ID), adds its own spans, and merges
// the Chrome trace documents into one file where every process of the fleet
// renders as its own Perfetto process group — one timeline shows a request
// crossing the router, the workers, and each worker's simulated SoC rows.
//
// Two problems make this more than concatenation:
//
//   - PID collision: every tracer exports the same clock-domain PIDs (wall,
//     sim, exec). Each part's PIDs are remapped into a disjoint block and
//     its process names prefixed with the part label ("worker w1: wall
//     clock"), so rows stay distinguishable.
//   - Epoch skew: wall-clock timestamps are offsets from each tracer's own
//     epoch. Parts exported with WriteChromeTraceEpoch carry that epoch, and
//     wall-clock events are shifted onto the earliest part's timeline.
//     Simulated-clock rows (PIDSim) are virtual time and are never shifted.

// TracePart is one process's contribution to a stitched trace.
type TracePart struct {
	// Label prefixes the part's process names ("router", "worker w1").
	Label string
	// JSON is the part's Chrome trace document ({"traceEvents": [...]},
	// optionally with "epochUnixUs" for wall-clock alignment).
	JSON []byte
}

// pidStride spaces the PID blocks of stitched parts; a single tracer uses
// PIDs 1..3, so 16 leaves room to grow.
const pidStride = 16

// stitchDoc is the loosely parsed form of one part.
type stitchDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	EpochUnixUs int64         `json:"epochUnixUs"`
}

// StitchChromeTraces merges the parts into one Chrome trace document. Parts
// that fail to parse abort the stitch (a worker that answered garbage should
// be visible, not silently dropped).
func StitchChromeTraces(w io.Writer, parts []TracePart) error {
	var minEpoch int64
	docs := make([]stitchDoc, len(parts))
	for i, p := range parts {
		if err := json.Unmarshal(p.JSON, &docs[i]); err != nil {
			return fmt.Errorf("obs: stitch: part %q: %w", p.Label, err)
		}
		if e := docs[i].EpochUnixUs; e != 0 && (minEpoch == 0 || e < minEpoch) {
			minEpoch = e
		}
	}
	var events []chromeEvent
	for i, doc := range docs {
		var offset int64
		if doc.EpochUnixUs != 0 && minEpoch != 0 {
			offset = doc.EpochUnixUs - minEpoch
		}
		for _, ev := range doc.TraceEvents {
			ev.PID += i * pidStride
			switch {
			case ev.Ph == "M" && ev.Name == "process_name":
				if parts[i].Label != "" {
					if name, ok := ev.Args["name"].(string); ok {
						// Copy-on-write: the args map may be shared.
						args := make(map[string]any, len(ev.Args))
						for k, v := range ev.Args {
							args[k] = v
						}
						args["name"] = parts[i].Label + ": " + name
						ev.Args = args
					}
				}
			case ev.Ph == "M":
				// Other metadata (thread names): PID remap only.
			case ev.PID != i*pidStride+PIDSim:
				// Wall-clock span: translate onto the earliest epoch.
				ev.TS += offset
			}
			events = append(events, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
