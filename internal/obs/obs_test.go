package obs

import (
	"testing"
	"time"
)

func TestTrackBeginEnd(t *testing.T) {
	tr := NewTracer(8)
	tk := tr.NewTrack("main")
	m := tk.Begin("work", "test")
	time.Sleep(200 * time.Microsecond)
	tk.End(m, A("k", 7))

	spans, names := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "work" || s.Cat != "test" {
		t.Errorf("span = %q/%q, want work/test", s.Name, s.Cat)
	}
	if s.PID != PIDWall || s.TID != 0 {
		t.Errorf("span at pid=%d tid=%d, want pid=%d tid=0", s.PID, s.TID, PIDWall)
	}
	if s.Dur <= 0 {
		t.Errorf("Dur = %dµs, want > 0", s.Dur)
	}
	if s.Start < 0 {
		t.Errorf("Start = %dµs, want >= 0 (after epoch)", s.Start)
	}
	if s.End() != s.Start+s.Dur {
		t.Errorf("End() = %d, want Start+Dur = %d", s.End(), s.Start+s.Dur)
	}
	if len(s.Args) != 1 || s.Args[0].Key != "k" || s.Args[0].Val != 7 {
		t.Errorf("Args = %v, want [{k 7}]", s.Args)
	}
	if got := names[Thread{PID: PIDWall, TID: 0}]; got != "main" {
		t.Errorf("thread name = %q, want main", got)
	}
}

func TestTrackEmitRetroactive(t *testing.T) {
	tr := NewTracer(8)
	tk := tr.NewTrack("t")
	start := tr.Epoch().Add(5 * time.Millisecond)
	tk.Emit("queued", "serve", start, 3*time.Millisecond)

	spans, _ := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	if spans[0].Start != 5000 || spans[0].Dur != 3000 {
		t.Errorf("span = start %dµs dur %dµs, want 5000/3000", spans[0].Start, spans[0].Dur)
	}
}

// The ring must retain the most recent capacity spans, oldest first.
func TestTrackRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	tk := tr.NewTrack("ring")
	names := []string{"a", "b", "c", "d", "e", "f"}
	for i, n := range names {
		tk.Emit(n, "test", tr.Epoch().Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	if tk.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (capacity)", tk.Len())
	}
	spans, _ := tr.Snapshot()
	want := []string{"c", "d", "e", "f"} // the oldest two fell out
	if len(spans) != len(want) {
		t.Fatalf("got %d spans, want %d", len(spans), len(want))
	}
	for i, w := range want {
		if spans[i].Name != w {
			t.Errorf("span[%d] = %q, want %q (oldest first)", i, spans[i].Name, w)
		}
	}
}

// A ring filled to exactly its capacity (no overwrites yet) must snapshot
// every span exactly once.
func TestTrackRingExactlyFull(t *testing.T) {
	tr := NewTracer(3)
	tk := tr.NewTrack("full")
	for _, n := range []string{"a", "b", "c"} {
		tk.Emit(n, "test", tr.Epoch(), time.Millisecond)
	}
	spans, _ := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i, w := range []string{"a", "b", "c"} {
		if spans[i].Name != w {
			t.Errorf("span[%d] = %q, want %q", i, spans[i].Name, w)
		}
	}
}

func TestTracerMultipleTracks(t *testing.T) {
	tr := NewTracer(8)
	a := tr.NewTrack("alpha")
	b := tr.NewTrack("beta")
	a.Emit("x", "test", tr.Epoch(), time.Millisecond)
	b.Emit("y", "test", tr.Epoch(), time.Millisecond)

	spans, names := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if names[Thread{PID: PIDWall, TID: 0}] != "alpha" || names[Thread{PID: PIDWall, TID: 1}] != "beta" {
		t.Errorf("track names = %v, want alpha@0 beta@1", names)
	}
	tids := map[int]string{}
	for _, s := range spans {
		tids[s.TID] = s.Name
	}
	if tids[0] != "x" || tids[1] != "y" {
		t.Errorf("spans per tid = %v, want x@0 y@1", tids)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(8)
	tk := tr.NewTrack("t")
	tk.Emit("a", "test", tr.Epoch(), time.Millisecond)
	tr.Reset()
	if tk.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", tk.Len())
	}
	spans, names := tr.Snapshot()
	if len(spans) != 0 {
		t.Errorf("got %d spans after Reset, want 0", len(spans))
	}
	// The track itself survives a reset and keeps recording.
	if len(names) != 1 {
		t.Errorf("got %d track names after Reset, want 1", len(names))
	}
	tk.Emit("b", "test", tr.Epoch(), time.Millisecond)
	if tk.Len() != 1 {
		t.Errorf("Len after post-Reset Emit = %d, want 1", tk.Len())
	}
}

// Instrumented code paths hold possibly-nil Tracks; every method must be a
// safe no-op on nil.
func TestNilTrackSafe(t *testing.T) {
	var tk *Track
	m := tk.Begin("x", "y")
	tk.End(m)
	tk.Emit("x", "y", time.Now(), time.Millisecond)
	if tk.Len() != 0 {
		t.Errorf("nil Track Len = %d, want 0", tk.Len())
	}
}

func TestDefaultCapacity(t *testing.T) {
	tr := NewTracer(0)
	tk := tr.NewTrack("t")
	for i := 0; i < 2000; i++ {
		tk.Emit("s", "test", tr.Epoch(), time.Microsecond)
	}
	if tk.Len() != 1024 {
		t.Errorf("Len = %d, want default capacity 1024", tk.Len())
	}
}
