package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedClock is a settable test clock.
type fixedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fixedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fixedClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newSLOUnderTest(slo SLO) (*SLOTracker, *fixedClock) {
	clk := &fixedClock{t: time.Unix(1_700_000_000, 0)}
	tr := NewSLOTracker()
	tr.SetClock(clk.now)
	tr.Set("m", slo)
	return tr, clk
}

func TestSLOBurnRateMath(t *testing.T) {
	// 99% of requests under 100ms over a 160s window (10s buckets).
	tr, _ := newSLOUnderTest(SLO{ObjectiveQuantile: 0.99, ThresholdMs: 100, Window: 160 * time.Second})

	// 98 good, 2 bad (one slow, one failed): bad fraction 2% against a 1%
	// budget → burn rate 2, budget exhausted, unhealthy.
	for i := 0; i < 98; i++ {
		tr.Observe("m", 10, false)
	}
	tr.Observe("m", 500, false)
	tr.Observe("m", 10, true)

	st, ok := tr.Status("m")
	if !ok {
		t.Fatal("no status for configured model")
	}
	if st.Requests != 100 || st.Breaches != 2 {
		t.Fatalf("window = %d requests / %d breaches, want 100/2", st.Requests, st.Breaches)
	}
	if math.Abs(st.BurnRate-2.0) > 1e-9 {
		t.Errorf("burn rate = %v, want 2.0", st.BurnRate)
	}
	if st.BudgetRemaining != 0 {
		t.Errorf("budget remaining = %v, want 0 (overspent clamps)", st.BudgetRemaining)
	}
	if st.Healthy {
		t.Error("burn rate 2.0 reported healthy")
	}
}

func TestSLOHealthyWithinBudget(t *testing.T) {
	tr, _ := newSLOUnderTest(SLO{ObjectiveQuantile: 0.9, ThresholdMs: 100, Window: 160 * time.Second})
	// 5% bad against a 10% budget: burn rate 0.5, half the budget left.
	for i := 0; i < 95; i++ {
		tr.Observe("m", 1, false)
	}
	for i := 0; i < 5; i++ {
		tr.Observe("m", 200, false)
	}
	st, _ := tr.Status("m")
	if math.Abs(st.BurnRate-0.5) > 1e-9 || math.Abs(st.BudgetRemaining-0.5) > 1e-9 {
		t.Fatalf("burn=%v remaining=%v, want 0.5/0.5", st.BurnRate, st.BudgetRemaining)
	}
	if !st.Healthy {
		t.Error("burn rate 0.5 reported unhealthy")
	}
}

func TestSLOEmptyWindowHealthy(t *testing.T) {
	tr, _ := newSLOUnderTest(SLO{})
	st, ok := tr.Status("m")
	if !ok || !st.Healthy || st.BudgetRemaining != 1 || st.BurnRate != 0 {
		t.Fatalf("empty window status = %+v ok=%v, want healthy with full budget", st, ok)
	}
	if _, ok := tr.Status("unknown"); ok {
		t.Error("unknown model reported a status")
	}
}

func TestSLOWindowExpiry(t *testing.T) {
	// 160s window = 10s buckets. Breaches now must age out of the window.
	tr, clk := newSLOUnderTest(SLO{ObjectiveQuantile: 0.99, ThresholdMs: 100, Window: 160 * time.Second})
	for i := 0; i < 10; i++ {
		tr.Observe("m", 500, false) // all bad
	}
	if st, _ := tr.Status("m"); st.Healthy || st.Breaches != 10 {
		t.Fatalf("fresh breaches not visible: %+v", st)
	}
	// Advance past the window: the old buckets' periods fall out of range.
	clk.advance(170 * time.Second)
	st, _ := tr.Status("m")
	if st.Requests != 0 || !st.Healthy {
		t.Fatalf("window did not expire: %+v", st)
	}
	// New traffic lands in re-used buckets without inheriting stale counts.
	tr.Observe("m", 1, false)
	st, _ = tr.Status("m")
	if st.Requests != 1 || st.Breaches != 0 {
		t.Fatalf("bucket reuse inherited stale counts: %+v", st)
	}
}

func TestSLODefaultsAndRemove(t *testing.T) {
	tr := NewSLOTracker()
	tr.Set("m", SLO{})
	slo, ok := tr.Get("m")
	if !ok || slo.ObjectiveQuantile != 0.99 || slo.ThresholdMs != 1000 || slo.Window != 5*time.Minute {
		t.Fatalf("defaults = %+v, want q=0.99 thr=1000ms window=5m", slo)
	}
	tr.Remove("m")
	if _, ok := tr.Get("m"); ok {
		t.Error("removed model still configured")
	}
	// Observe on an unconfigured model (and on nil) must be inert.
	tr.Observe("m", 1, false)
	var nilTr *SLOTracker
	nilTr.Observe("m", 1, false)
}

func TestSLOStatusAllSortedAndMetrics(t *testing.T) {
	tr := NewSLOTracker()
	// q=0.75 keeps the burn-rate arithmetic exact in binary floating point
	// (budget 0.25, one all-bad request → burn 4), so the exposition check
	// can match the rendered value literally.
	tr.Set("zebra", SLO{ObjectiveQuantile: 0.75, ThresholdMs: 100})
	tr.Set("ant", SLO{ObjectiveQuantile: 0.5, ThresholdMs: 100})
	tr.Observe("zebra", 500, false)
	all := tr.StatusAll()
	if len(all) != 2 || all[0].Model != "ant" || all[1].Model != "zebra" {
		t.Fatalf("StatusAll order = %+v, want [ant zebra]", all)
	}

	reg := NewRegistry()
	tr.ExportMetrics(reg)
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	text := buf.String()
	for _, want := range []string{
		`# TYPE np_slo_burn_rate gauge`,
		`np_slo_burn_rate{model="zebra"} 4`,
		`np_slo_budget_remaining{model="zebra"} 0`,
		`np_slo_healthy{model="zebra"} 0`,
		`np_slo_window_requests{model="ant"} 0`,
		`np_slo_healthy{model="ant"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestSLOObserveConcurrent(t *testing.T) {
	tr, _ := newSLOUnderTest(SLO{ObjectiveQuantile: 0.99, ThresholdMs: 100, Window: 160 * time.Second})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				tr.Observe("m", float64(i%200), false)
				if i%50 == 0 {
					tr.Status("m")
				}
			}
		}()
	}
	wg.Wait()
	st, _ := tr.Status("m")
	if st.Requests != 2000 {
		t.Fatalf("window counted %d requests, want 2000 (fixed clock, one bucket)", st.Requests)
	}
}
