package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func testLogger(min Level) (*Logger, *bytes.Buffer) {
	var buf bytes.Buffer
	l := NewLogger(&buf, "npserve", min)
	l.SetClock(func() time.Time { return time.Date(2026, 8, 9, 12, 0, 1, 234e6, time.UTC) })
	return l, &buf
}

func TestLoggerLineFormat(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.Info("deployed model", "model", "emotion", "version", "v1", "pool", 2)
	got := buf.String()
	want := "2026-08-09T12:00:01.234Z INFO npserve deployed model model=emotion version=v1 pool=2\n"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestLoggerLevels(t *testing.T) {
	l, buf := testLogger(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[0], " WARN ") || !strings.Contains(lines[1], " ERROR ") {
		t.Fatalf("min-level filter emitted %q", buf.String())
	}
}

func TestLoggerQuoting(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.Info("msg", "clean", "bare", "spacey", "two words", "eq", "a=b", "empty", "")
	got := buf.String()
	for _, want := range []string{"clean=bare", `spacey="two words"`, `eq="a=b"`, `empty=""`} {
		if !strings.Contains(got, want) {
			t.Errorf("line %q missing %q", got, want)
		}
	}
}

func TestLoggerWithAndTrace(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	child := l.With("worker", "d9000-0")
	tc := MintTrace()
	ctx := WithTrace(context.Background(), tc)
	child.WithTrace(ctx).Info("routing")
	got := buf.String()
	if !strings.Contains(got, "worker=d9000-0") || !strings.Contains(got, "trace="+tc.TraceID) {
		t.Fatalf("line %q missing bound worker or trace id", got)
	}
	// Untraced contexts add nothing.
	buf.Reset()
	child.WithTrace(context.Background()).Info("routing")
	if strings.Contains(buf.String(), "trace=") {
		t.Fatalf("untraced line %q carries a trace key", buf.String())
	}
}

func TestLoggerOddPairs(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	l.Info("msg", "key") // trailing key without value
	if !strings.Contains(buf.String(), "key=!MISSING") {
		t.Fatalf("odd kv rendered as %q", buf.String())
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Info("into the void", "k", "v")
	l.With("a", "b").Error("still void")
	l.WithTrace(context.Background()).Warn("void")
	l.SetClock(time.Now)
}

func TestLoggerConcurrent(t *testing.T) {
	l, buf := testLogger(LevelInfo)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Info("tick", "j", j)
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for _, line := range lines {
		if !strings.HasPrefix(line, "2026-08-09T12:00:01.234Z INFO npserve tick j=") {
			t.Fatalf("interleaved/torn line %q", line)
		}
	}
}
