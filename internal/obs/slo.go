package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Service-level objectives over a rolling window. An SLO states "at least
// ObjectiveQuantile of requests complete under ThresholdMs and without
// error, measured over Window". The tracker counts every request into
// coarse time buckets (lock-free on the observe path) and derives the
// Google-SRE burn-rate vocabulary from them:
//
//	bad fraction    = (breaching requests) / (window requests)
//	error budget    = 1 - ObjectiveQuantile        (allowed bad fraction)
//	burn rate       = bad fraction / error budget  (1.0 = spending exactly
//	                                                the budget; >1 = burning)
//	budget remaining= max(0, 1 - burn rate)        (fraction of the window's
//	                                                budget still unspent)
//
// The router consumes per-worker, per-model SLO health from /healthz as a
// routing penalty, and /metricsz exports the same numbers as np_slo_*.

// SLO is one model's latency/error objective.
type SLO struct {
	// ObjectiveQuantile is the fraction of requests that must meet the
	// threshold (e.g. 0.99); the error budget is 1 - ObjectiveQuantile.
	ObjectiveQuantile float64
	// ThresholdMs is the end-to-end latency bound a request must meet; a
	// failed request breaches regardless of latency.
	ThresholdMs float64
	// Window is the rolling measurement window (default 5m).
	Window time.Duration
}

func (s SLO) withDefaults() SLO {
	if s.ObjectiveQuantile <= 0 || s.ObjectiveQuantile >= 1 {
		s.ObjectiveQuantile = 0.99
	}
	if s.ThresholdMs <= 0 {
		s.ThresholdMs = 1000
	}
	if s.Window <= 0 {
		s.Window = 5 * time.Minute
	}
	return s
}

// SLOStatus is one model's point-in-time SLO evaluation (the /healthz "slo"
// rows and the np_slo_* metric values).
type SLOStatus struct {
	Model             string  `json:"model"`
	ObjectiveQuantile float64 `json:"objective_quantile"`
	ThresholdMs       float64 `json:"threshold_ms"`
	WindowSeconds     float64 `json:"window_seconds"`
	// Requests and Breaches count the rolling window's traffic and its
	// objective violations (slow or failed).
	Requests uint64 `json:"window_requests"`
	Breaches uint64 `json:"window_breaches"`
	// BurnRate is bad-fraction over error budget; BudgetRemaining is the
	// unspent fraction of the window's error budget.
	BurnRate        float64 `json:"burn_rate"`
	BudgetRemaining float64 `json:"budget_remaining"`
	// Healthy means the window's burn rate is at most 1 (the objective is
	// being met). An empty window is healthy.
	Healthy bool `json:"healthy"`
}

// sloBuckets is the windowed estimator's resolution: the window is split
// into this many rotating buckets, so the effective window wobbles by at
// most 1/sloBuckets of its width as buckets expire.
const sloBuckets = 16

type sloBucket struct {
	// period stamps which absolute window-slice the bucket currently counts;
	// a bucket whose period has fallen out of the window is re-zeroed by the
	// first observer of the new period (counts between the CAS and the reset
	// can be lost — the estimator is deliberately approximate).
	period atomic.Int64
	total  atomic.Uint64
	bad    atomic.Uint64
}

type sloSeries struct {
	slo     SLO
	bucketD time.Duration
	buckets [sloBuckets]sloBucket
}

// SLOTracker evaluates per-model SLOs from streaming observations. Observe
// is lock-free after the map lookup (a read-lock); Set/Remove are rare.
type SLOTracker struct {
	mu     sync.RWMutex
	series map[string]*sloSeries
	now    func() time.Time
}

// NewSLOTracker returns an empty tracker.
func NewSLOTracker() *SLOTracker {
	return &SLOTracker{series: map[string]*sloSeries{}, now: time.Now}
}

// SetClock overrides the tracker's clock (tests).
func (t *SLOTracker) SetClock(now func() time.Time) { t.now = now }

// Set installs (or replaces) the objective for model.
func (t *SLOTracker) Set(model string, slo SLO) {
	slo = slo.withDefaults()
	s := &sloSeries{slo: slo, bucketD: slo.Window / sloBuckets}
	if s.bucketD <= 0 {
		s.bucketD = time.Second
	}
	t.mu.Lock()
	t.series[model] = s
	t.mu.Unlock()
}

// Remove drops the model's objective (retiring an endpoint).
func (t *SLOTracker) Remove(model string) {
	t.mu.Lock()
	delete(t.series, model)
	t.mu.Unlock()
}

// Get returns the configured objective for model.
func (t *SLOTracker) Get(model string) (SLO, bool) {
	t.mu.RLock()
	s, ok := t.series[model]
	t.mu.RUnlock()
	if !ok {
		return SLO{}, false
	}
	return s.slo, true
}

// Observe counts one completed request: its end-to-end latency and whether
// it failed. Models without an objective are ignored. Safe on nil.
//
//np:hotpath
func (t *SLOTracker) Observe(model string, latencyMs float64, failed bool) {
	if t == nil {
		return
	}
	t.mu.RLock()
	s := t.series[model]
	now := t.now()
	t.mu.RUnlock()
	if s == nil {
		return
	}
	period := now.UnixNano() / int64(s.bucketD)
	b := &s.buckets[uint64(period)%sloBuckets]
	if old := b.period.Load(); old != period {
		if b.period.CompareAndSwap(old, period) {
			b.total.Store(0)
			b.bad.Store(0)
		}
	}
	b.total.Add(1)
	if failed || latencyMs > s.slo.ThresholdMs {
		b.bad.Add(1)
	}
}

// Status evaluates one model's window.
func (t *SLOTracker) Status(model string) (SLOStatus, bool) {
	t.mu.RLock()
	s, ok := t.series[model]
	now := t.now()
	t.mu.RUnlock()
	if !ok {
		return SLOStatus{}, false
	}
	return s.status(model, now), true
}

// StatusAll evaluates every configured model, sorted by name.
func (t *SLOTracker) StatusAll() []SLOStatus {
	t.mu.RLock()
	names := make([]string, 0, len(t.series))
	for n := range t.series {
		names = append(names, n)
	}
	sers := make([]*sloSeries, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		sers = append(sers, t.series[n])
	}
	now := t.now()
	t.mu.RUnlock()
	out := make([]SLOStatus, len(names))
	for i := range names {
		out[i] = sers[i].status(names[i], now)
	}
	return out
}

func (s *sloSeries) status(model string, now time.Time) SLOStatus {
	st := SLOStatus{
		Model:             model,
		ObjectiveQuantile: s.slo.ObjectiveQuantile,
		ThresholdMs:       s.slo.ThresholdMs,
		WindowSeconds:     s.slo.Window.Seconds(),
		Healthy:           true,
	}
	cur := now.UnixNano() / int64(s.bucketD)
	oldest := cur - sloBuckets + 1
	for i := range s.buckets {
		b := &s.buckets[i]
		p := b.period.Load()
		if p < oldest || p > cur {
			continue // expired (or never used) bucket
		}
		st.Requests += b.total.Load()
		st.Breaches += b.bad.Load()
	}
	if st.Requests == 0 {
		st.BudgetRemaining = 1
		return st
	}
	badFrac := float64(st.Breaches) / float64(st.Requests)
	budget := 1 - s.slo.ObjectiveQuantile
	st.BurnRate = badFrac / budget
	st.BudgetRemaining = 1 - st.BurnRate
	if st.BudgetRemaining < 0 {
		st.BudgetRemaining = 0
	}
	st.Healthy = st.BurnRate <= 1
	return st
}

// ExportMetrics refreshes the np_slo_* gauge families on reg from the
// tracker's current windows — call at scrape time (serve's /metricsz).
func (t *SLOTracker) ExportMetrics(reg *Registry) {
	for _, st := range t.StatusAll() {
		lm := L("model", st.Model)
		reg.Gauge("np_slo_burn_rate",
			"Error-budget burn rate over the SLO window (1.0 = spending exactly the budget).", lm).
			Set(st.BurnRate)
		reg.Gauge("np_slo_budget_remaining",
			"Unspent fraction of the SLO window's error budget.", lm).
			Set(st.BudgetRemaining)
		reg.Gauge("np_slo_window_requests",
			"Requests observed in the rolling SLO window.", lm).
			Set(float64(st.Requests))
		reg.Gauge("np_slo_window_breaches",
			"Requests in the rolling SLO window that breached the objective (slow or failed).", lm).
			Set(float64(st.Breaches))
		healthy := 0.0
		if st.Healthy {
			healthy = 1
		}
		reg.Gauge("np_slo_healthy",
			"1 while the model's SLO burn rate is at most 1.", lm).
			Set(healthy)
	}
}
