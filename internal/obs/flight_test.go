package obs

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/race"
)

func TestFlightRecorderRetainsAndWraps(t *testing.T) {
	f := NewFlightRecorder(4, 2, 0)
	for i := 0; i < 10; i++ {
		f.Record(FlightRecord{Model: fmt.Sprintf("m%d", i), TotalMs: float64(i)})
	}
	got := f.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot holds %d records, want ring capacity 4", len(got))
	}
	for i, r := range got {
		if want := fmt.Sprintf("m%d", 6+i); r.Model != want {
			t.Errorf("snapshot[%d].Model = %q, want %q (newest 4, oldest first)", i, r.Model, want)
		}
		if r.Seq != uint64(6+i) {
			t.Errorf("snapshot[%d].Seq = %d, want %d", i, r.Seq, 6+i)
		}
	}
}

func TestFlightRecorderSlowLaneSurvivesWrap(t *testing.T) {
	// Ring of 2 but a slow lane keeping the worst 2 past 100ms.
	f := NewFlightRecorder(2, 2, 100)
	f.Record(FlightRecord{TraceID: "slowest", TotalMs: 500})
	f.Record(FlightRecord{TraceID: "slow", TotalMs: 200})
	f.Record(FlightRecord{TraceID: "fast", TotalMs: 1})
	for i := 0; i < 8; i++ { // wrap the main ring with fast traffic
		f.Record(FlightRecord{TraceID: "churn", TotalMs: 2})
	}
	for _, r := range f.Snapshot() {
		if r.TraceID == "slowest" || r.TraceID == "slow" {
			t.Fatalf("main ring still holds %q after wrap", r.TraceID)
		}
	}
	slow := f.Slow()
	if len(slow) != 2 || slow[0].TraceID != "slowest" || slow[1].TraceID != "slow" {
		t.Fatalf("slow lane = %+v, want [slowest slow]", slow)
	}

	// A worse request displaces the least-bad slow entry.
	f.Record(FlightRecord{TraceID: "worst", TotalMs: 900})
	slow = f.Slow()
	if len(slow) != 2 || slow[0].TraceID != "worst" || slow[1].TraceID != "slowest" {
		t.Fatalf("slow lane after displacement = %+v, want [worst slowest]", slow)
	}
	// Sub-threshold requests never enter the lane.
	f.Record(FlightRecord{TraceID: "meh", TotalMs: 99})
	for _, r := range f.Slow() {
		if r.TraceID == "meh" {
			t.Fatal("sub-threshold record entered the slow lane")
		}
	}
}

func TestFlightRecorderDisabled(t *testing.T) {
	f := NewFlightRecorder(4, 2, 1)
	f.SetEnabled(false)
	f.Record(FlightRecord{TraceID: "x", TotalMs: 50})
	if got := f.Snapshot(); len(got) != 0 {
		t.Fatalf("disabled recorder retained %d records", len(got))
	}
	if got := f.Slow(); len(got) != 0 {
		t.Fatalf("disabled recorder retained %d slow records", len(got))
	}
	f.SetEnabled(true)
	f.Record(FlightRecord{TraceID: "y", TotalMs: 50})
	if got := f.Snapshot(); len(got) != 1 || got[0].TraceID != "y" {
		t.Fatalf("re-enabled recorder snapshot = %+v", got)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(FlightRecord{})
	f.SetEnabled(true)
	if f.Enabled() || f.Snapshot() != nil || f.Slow() != nil || f.Dropped() != 0 || f.SlowThresholdMs() != 0 {
		t.Fatal("nil recorder is not inert")
	}
}

func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(64, 8, 10)
	var wg sync.WaitGroup
	const writers, per = 8, 500
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.Record(FlightRecord{Model: "m", TotalMs: float64(i % 20)})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { // concurrent readers must see consistent snapshots
		defer close(done)
		for i := 0; i < 50; i++ {
			for _, r := range f.Snapshot() {
				if r.Model != "m" {
					t.Errorf("torn record: %+v", r)
					return
				}
			}
			f.Slow()
		}
	}()
	wg.Wait()
	<-done
	if got, want := len(f.Snapshot()), 64; got != want {
		t.Fatalf("snapshot holds %d records, want full ring %d", got, want)
	}
}

// TestFlightRecorderDisabledZeroAlloc pins the "always-on is free when off"
// claim: a disabled recorder's Record is one atomic load, zero allocations.
// Skipped under -race (AllocsPerRun is nondeterministic there by design).
func TestFlightRecorderDisabledZeroAlloc(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation pins are nondeterministic under -race")
	}
	f := NewFlightRecorder(16, 4, 1)
	f.SetEnabled(false)
	rec := FlightRecord{TraceID: "t", Model: "m", Status: "ok", TotalMs: 5}
	if n := testing.AllocsPerRun(200, func() { f.Record(rec) }); n != 0 {
		t.Fatalf("disabled Record allocates %v per op, want 0", n)
	}
	// The enabled fast lane (sub-threshold) is allocation-free too.
	f.SetEnabled(true)
	fast := FlightRecord{TraceID: "t", Model: "m", Status: "ok", TotalMs: 0.1}
	if n := testing.AllocsPerRun(200, func() { f.Record(fast) }); n != 0 {
		t.Fatalf("enabled Record allocates %v per op, want 0", n)
	}
}
