package obs

import (
	"strings"
	"testing"
)

func TestInjectLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`m 1`, `m{worker="w1"} 1`},
		{`m{a="b"} 2`, `m{worker="w1",a="b"} 2`},
		{`m{} 3`, `m{worker="w1"} 3`},
		{`lat_bucket{le="+Inf"} 4`, `lat_bucket{worker="w1",le="+Inf"} 4`},
		{`m{a="has } and , inside"} 5`, `m{worker="w1",a="has } and , inside"} 5`},
	}
	for _, c := range cases {
		got, err := InjectLabel(c.in, "worker", "w1")
		if err != nil {
			t.Errorf("InjectLabel(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("InjectLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := InjectLabel("  bad", "worker", "w"); err == nil {
		t.Error("want error for line with no metric name")
	}
}

// TestMergerCombinesWorkers merges two real registry expositions under
// distinct worker labels: one header per family, every sample relabeled,
// histogram suffix samples kept with their family.
func TestMergerCombinesWorkers(t *testing.T) {
	mkExpo := func(reqs float64) []byte {
		r := NewRegistry()
		r.Counter("np_serve_requests_total", "Requests.", L("model", "emotion")).Add(reqs)
		r.Gauge("np_serve_inflight", "In-flight.", L()).Set(2)
		r.Histogram("np_serve_latency_seconds", "Latency.", L(), []float64{0.1, 1}).Observe(0.5)
		var b strings.Builder
		r.WritePrometheus(&b)
		return []byte(b.String())
	}

	m := NewMerger()
	if err := m.Add("worker", "w1", mkExpo(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("worker", "w2", mkExpo(7)); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := m.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()

	for _, header := range []string{
		"# TYPE np_serve_requests_total counter",
		"# TYPE np_serve_inflight gauge",
		"# TYPE np_serve_latency_seconds histogram",
	} {
		if strings.Count(text, header) != 1 {
			t.Errorf("header %q appears %d times, want exactly 1", header, strings.Count(text, header))
		}
	}
	for _, sample := range []string{
		`np_serve_requests_total{worker="w1",model="emotion"} 3`,
		`np_serve_requests_total{worker="w2",model="emotion"} 7`,
		`np_serve_inflight{worker="w1"} 2`,
		`np_serve_latency_seconds_bucket{worker="w2",le="+Inf"} 1`,
		`np_serve_latency_seconds_count{worker="w1"} 1`,
	} {
		if !strings.Contains(text, sample) {
			t.Errorf("merged exposition missing %q\n%s", sample, text)
		}
	}

	// Histogram suffix samples must sit under their family header, not start
	// families of their own.
	if strings.Contains(text, "# TYPE np_serve_latency_seconds_bucket") {
		t.Error("histogram _bucket samples split into their own family")
	}

	// Conflicting TYPE declarations are rejected.
	bad := NewMerger()
	if err := bad.Add("", "", []byte("# TYPE m counter\nm 1\n")); err != nil {
		t.Fatal(err)
	}
	if err := bad.Add("", "", []byte("# TYPE m gauge\nm 2\n")); err == nil {
		t.Error("conflicting TYPE must error")
	}
}

// TestInjectLabelEscapedValues: label values may contain escaped quotes and
// backslashes; the injection point is right after the metric name, so the
// label body — however gnarly — must ride through untouched, and injected
// values must themselves be escaped exposition-style.
func TestInjectLabelEscapedValues(t *testing.T) {
	cases := []struct{ in, key, val, want string }{
		// Existing label value with an escaped quote.
		{`m{path="say \"hi\""} 1`, "worker", "w1", `m{worker="w1",path="say \"hi\""} 1`},
		// Existing label value with escaped backslashes (a Windows path).
		{`m{dir="C:\\tmp\\x"} 2`, "worker", "w1", `m{worker="w1",dir="C:\\tmp\\x"} 2`},
		// Injected value needing escaping: quotes and backslashes.
		{`m 3`, "worker", `a"b\c`, `m{worker="a\"b\\c"} 3`},
		// Injected value with a newline (exposition escapes it as \n).
		{`m{a="b"} 4`, "worker", "two\nlines", `m{worker="two\nlines",a="b"} 4`},
		// Escaped quote as the *last* byte of the last label value.
		{`m{a="trailing\""} 5`, "worker", "w1", `m{worker="w1",a="trailing\""} 5`},
	}
	for _, c := range cases {
		got, err := InjectLabel(c.in, c.key, c.val)
		if err != nil {
			t.Errorf("InjectLabel(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("InjectLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestMergerHelpDedupWhenWorkersDisagree: two workers exporting different
// HELP text for one family must still merge — first declaration wins, one
// header fleet-wide — because help text is documentation, not schema.
func TestMergerHelpDedupWhenWorkersDisagree(t *testing.T) {
	m := NewMerger()
	if err := m.Add("worker", "w1", []byte("# HELP m old help.\n# TYPE m counter\nm 1\n")); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("worker", "w2", []byte("# HELP m new help (worker upgraded).\n# TYPE m counter\nm 2\n")); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := m.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Count(text, "# HELP m ") != 1 {
		t.Fatalf("HELP emitted %d times, want 1:\n%s", strings.Count(text, "# HELP m "), text)
	}
	if !strings.Contains(text, "# HELP m old help.") {
		t.Errorf("first-seen HELP text lost:\n%s", text)
	}
	if strings.Contains(text, "new help") {
		t.Errorf("conflicting later HELP text leaked into the merge:\n%s", text)
	}
	for _, sample := range []string{`m{worker="w1"} 1`, `m{worker="w2"} 2`} {
		if !strings.Contains(text, sample) {
			t.Errorf("merged exposition missing %q:\n%s", sample, text)
		}
	}
}

// TestMergerHeaderlessSamples: a foreign exposition with no HELP/TYPE at all
// (or samples arriving before any header) still merges, each sample keyed
// under its own metric name — including histogram-suffix names, which
// without a header cannot be attributed to a parent family.
func TestMergerHeaderlessSamples(t *testing.T) {
	m := NewMerger()
	if err := m.Add("worker", "w1", []byte("plain 1\nlat_bucket{le=\"+Inf\"} 3\n")); err != nil {
		t.Fatal(err)
	}
	// A second worker then declares the family properly; the samples join it.
	if err := m.Add("worker", "w2", []byte("# TYPE plain counter\nplain 2\n")); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := m.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, sample := range []string{
		`plain{worker="w1"} 1`,
		`plain{worker="w2"} 2`,
		`lat_bucket{worker="w1",le="+Inf"} 3`,
	} {
		if !strings.Contains(text, sample) {
			t.Errorf("merged exposition missing %q:\n%s", sample, text)
		}
	}
	if strings.Count(text, "# TYPE plain counter") != 1 {
		t.Errorf("late TYPE header not adopted exactly once:\n%s", text)
	}
}

// TestMergerNoRelabel: key == "" merges verbatim.
func TestMergerNoRelabel(t *testing.T) {
	m := NewMerger()
	if err := m.Add("", "", []byte("# HELP m help text\n# TYPE m counter\nm 5\n")); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := m.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	want := "# HELP m help text\n# TYPE m counter\nm 5\n"
	if out.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", out.String(), want)
	}
}
