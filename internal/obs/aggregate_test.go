package obs

import (
	"strings"
	"testing"
)

func TestInjectLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{`m 1`, `m{worker="w1"} 1`},
		{`m{a="b"} 2`, `m{worker="w1",a="b"} 2`},
		{`m{} 3`, `m{worker="w1"} 3`},
		{`lat_bucket{le="+Inf"} 4`, `lat_bucket{worker="w1",le="+Inf"} 4`},
		{`m{a="has } and , inside"} 5`, `m{worker="w1",a="has } and , inside"} 5`},
	}
	for _, c := range cases {
		got, err := InjectLabel(c.in, "worker", "w1")
		if err != nil {
			t.Errorf("InjectLabel(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("InjectLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if _, err := InjectLabel("  bad", "worker", "w"); err == nil {
		t.Error("want error for line with no metric name")
	}
}

// TestMergerCombinesWorkers merges two real registry expositions under
// distinct worker labels: one header per family, every sample relabeled,
// histogram suffix samples kept with their family.
func TestMergerCombinesWorkers(t *testing.T) {
	mkExpo := func(reqs float64) []byte {
		r := NewRegistry()
		r.Counter("np_serve_requests_total", "Requests.", L("model", "emotion")).Add(reqs)
		r.Gauge("np_serve_inflight", "In-flight.", L()).Set(2)
		r.Histogram("np_serve_latency_seconds", "Latency.", L(), []float64{0.1, 1}).Observe(0.5)
		var b strings.Builder
		r.WritePrometheus(&b)
		return []byte(b.String())
	}

	m := NewMerger()
	if err := m.Add("worker", "w1", mkExpo(3)); err != nil {
		t.Fatal(err)
	}
	if err := m.Add("worker", "w2", mkExpo(7)); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := m.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()

	for _, header := range []string{
		"# TYPE np_serve_requests_total counter",
		"# TYPE np_serve_inflight gauge",
		"# TYPE np_serve_latency_seconds histogram",
	} {
		if strings.Count(text, header) != 1 {
			t.Errorf("header %q appears %d times, want exactly 1", header, strings.Count(text, header))
		}
	}
	for _, sample := range []string{
		`np_serve_requests_total{worker="w1",model="emotion"} 3`,
		`np_serve_requests_total{worker="w2",model="emotion"} 7`,
		`np_serve_inflight{worker="w1"} 2`,
		`np_serve_latency_seconds_bucket{worker="w2",le="+Inf"} 1`,
		`np_serve_latency_seconds_count{worker="w1"} 1`,
	} {
		if !strings.Contains(text, sample) {
			t.Errorf("merged exposition missing %q\n%s", sample, text)
		}
	}

	// Histogram suffix samples must sit under their family header, not start
	// families of their own.
	if strings.Contains(text, "# TYPE np_serve_latency_seconds_bucket") {
		t.Error("histogram _bucket samples split into their own family")
	}

	// Conflicting TYPE declarations are rejected.
	bad := NewMerger()
	if err := bad.Add("", "", []byte("# TYPE m counter\nm 1\n")); err != nil {
		t.Fatal(err)
	}
	if err := bad.Add("", "", []byte("# TYPE m gauge\nm 2\n")); err == nil {
		t.Error("conflicting TYPE must error")
	}
}

// TestMergerNoRelabel: key == "" merges verbatim.
func TestMergerNoRelabel(t *testing.T) {
	m := NewMerger()
	if err := m.Add("", "", []byte("# HELP m help text\n# TYPE m counter\nm 5\n")); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if _, err := m.WriteTo(&out); err != nil {
		t.Fatal(err)
	}
	want := "# HELP m help text\n# TYPE m counter\nm 5\n"
	if out.String() != want {
		t.Errorf("got:\n%s\nwant:\n%s", out.String(), want)
	}
}
