package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics half of the package: a dependency-free registry of counters,
// gauges and fixed-bucket histograms with Prometheus text exposition
// (npserve's /metricsz). Instruments are lock-free on the update path
// (atomics only); the registry mutex guards registration and exposition.

// Label is one name="value" pair of a metric series.
type Label struct {
	Key, Value string
}

// Labels is an ordered label set.
type Labels []Label

// L builds a label set from alternating key, value strings.
func L(kv ...string) Labels {
	if len(kv)%2 != 0 {
		panic("obs.L: odd key/value count")
	}
	out := make(Labels, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{Key: kv[i], Value: kv[i+1]})
	}
	return out
}

// String renders the label set in exposition syntax ({} for empty).
func (ls Labels) String() string {
	if len(ls) == 0 {
		return ""
	}
	sorted := append(Labels(nil), ls...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	parts := make([]string, len(sorted))
	for i, l := range sorted {
		// %q escapes backslash, quote and newline exactly as the Prometheus
		// exposition format requires.
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// metric is anything a family can hold.
type metric interface {
	expose(w io.Writer, name, labels string)
}

// family groups the series of one metric name under a shared help string
// and type.
type family struct {
	name, help, typ string
	series          map[string]metric
	order           []string // insertion-ordered series keys
}

// Registry holds metric families and renders them as Prometheus text.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup returns (creating if needed) the series of one name+labels cell,
// enforcing one metric type per name.
func (r *Registry) lookup(name, help, typ string, labels Labels, make func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: map[string]metric{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	key := labels.String()
	m, ok := f.series[key]
	if !ok {
		m = make()
		f.series[key] = m
		f.order = append(f.order, key)
	}
	return m
}

// Counter returns the counter series for name+labels, registering it on
// first use. Counters only go up.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, "counter", labels, func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge series for name+labels.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, "gauge", labels, func() metric { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram series for name+labels with the given
// upper bucket bounds (used only on first registration of the series).
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	return r.lookup(name, help, "histogram", labels, func() metric { return NewHistogram(buckets) }).(*Histogram)
}

// WritePrometheus renders every family in Prometheus text exposition format
// (families in registration order, series in registration order).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, key := range f.order {
			f.series[key].expose(w, f.name, key)
		}
	}
}

// ---------------------------------------------------------------- counter

// Counter is a monotonically increasing float64, safe for concurrent use.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (v must be >= 0).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(c.Value()))
}

// ------------------------------------------------------------------ gauge

// Gauge is a settable float64, safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increases (or with negative v decreases) the gauge.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) expose(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// -------------------------------------------------------------- histogram

// Histogram counts observations into fixed upper-bound buckets (an
// observation v lands in the first bucket with v <= bound, Prometheus "le"
// semantics) and tracks sum, count and max for summary statistics.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
	maxBits atomic.Uint64
}

// NewHistogram builds a histogram over the given strictly increasing upper
// bounds. An implicit +Inf bucket catches everything beyond the last bound.
func NewHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not increasing at %d: %v", i, bounds))
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// ExpBuckets returns n exponential upper bounds start, start*factor,
// start*factor², … — the fixed layout serve's latency histograms use.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) && old != 0 {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Mean returns the average observed value (0 before any observation).
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket holding the target rank; ranks falling in
// the +Inf bucket return Max. The estimate's resolution is the bucket
// layout — exact enough for the p50/p95/p99 summaries /statsz reports.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.buckets {
		n := float64(h.buckets[i].Load())
		if cum+n >= rank && n > 0 {
			if i == len(h.bounds) {
				return h.Max()
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if max := h.Max(); max < hi {
				hi = max // no observation exceeds the max
			}
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.Max()
}

func (h *Histogram) expose(w io.Writer, name, labels string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(labels, "le", formatFloat(b)), cum)
	}
	cum += h.buckets[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, spliceLabel(labels, "le", "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.Count())
}

// spliceLabel appends one key="value" pair to a rendered label string.
func spliceLabel(labels, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + pair + "}"
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
