package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("Value = %g, want 3.5", got)
	}
}

// Counters must be exact under concurrent increments (run with -race).
func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("Value = %g, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("Value = %g, want 7", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("ExpBuckets with invalid args did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestNewHistogramPanicsOnNonIncreasing(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with non-increasing bounds did not panic")
		}
	}()
	NewHistogram([]float64{1, 1, 2})
}

// Bucket boundaries follow Prometheus le semantics: an observation equal to
// a bound lands in that bound's bucket, just above it spills to the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	h.Observe(1)    // == bound 0 -> bucket 0
	h.Observe(1.5)  // -> bucket 1
	h.Observe(2)    // == bound 1 -> bucket 1
	h.Observe(2.01) // -> bucket 2
	h.Observe(4)    // == bound 2 -> bucket 2
	h.Observe(100)  // beyond last bound -> +Inf bucket

	want := []uint64{1, 2, 2, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Errorf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 6 {
		t.Errorf("Count = %d, want 6", h.Count())
	}
	if got, want := h.Sum(), 1+1.5+2+2.01+4+100.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
	if h.Max() != 100 {
		t.Errorf("Max = %g, want 100", h.Max())
	}
	if got, want := h.Mean(), (1+1.5+2+2.01+4+100.0)/6; math.Abs(got-want) > 1e-9 {
		t.Errorf("Mean = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 6)) // 1 2 4 8 16 32
	if h.Quantile(0.5) != 0 {
		t.Errorf("Quantile on empty histogram = %g, want 0", h.Quantile(0.5))
	}
	for i := 0; i < 100; i++ {
		h.Observe(3) // all land in the (2,4] bucket
	}
	p50 := h.Quantile(0.5)
	if p50 < 2 || p50 > 4 {
		t.Errorf("p50 = %g, want within the (2,4] bucket", p50)
	}
	// The interpolation upper edge clamps to the observed max.
	if p100 := h.Quantile(1); p100 > 3 {
		t.Errorf("p100 = %g, want <= observed max 3", p100)
	}
	// A rank in the +Inf bucket reports the observed max.
	h.Observe(1000)
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 with +Inf observation = %g, want Max 1000", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 8))
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(v float64) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				h.Observe(v)
			}
		}(float64(i + 1))
	}
	wg.Wait()
	if h.Count() != workers*perWorker {
		t.Errorf("Count = %d, want %d", h.Count(), workers*perWorker)
	}
	if h.Max() != workers {
		t.Errorf("Max = %g, want %d", h.Max(), workers)
	}
}

func TestLabels(t *testing.T) {
	if got := L().String(); got != "" {
		t.Errorf("empty labels = %q, want \"\"", got)
	}
	// Rendering sorts keys, so registration order does not split series.
	if got := L("b", "2", "a", "1").String(); got != `{a="1",b="2"}` {
		t.Errorf("labels = %q, want {a=\"1\",b=\"2\"}`", got)
	}
	if got := L("k", "a\\b\nc").String(); got != `{k="a\\b\nc"}` {
		t.Errorf("escaped labels = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("L with odd arg count did not panic")
		}
	}()
	L("only-key")
}

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", L("m", "1"))
	b := r.Counter("x_total", "help", L("m", "1"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	c := r.Counter("x_total", "help", L("m", "2"))
	if a == c {
		t.Error("different labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "help", nil)
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "requests", L("model", "emotion")).Add(5)
	r.Gauge("up_seconds", "uptime", nil).Set(12.5)
	h := r.Histogram("lat_seconds", "latency", L("model", "emotion"), []float64{0.1, 0.5})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2)

	var b strings.Builder
	r.WritePrometheus(&b)
	got := b.String()

	want := `# HELP req_total requests
# TYPE req_total counter
req_total{model="emotion"} 5
# HELP up_seconds uptime
# TYPE up_seconds gauge
up_seconds 12.5
# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{model="emotion",le="0.1"} 1
lat_seconds_bucket{model="emotion",le="0.5"} 2
lat_seconds_bucket{model="emotion",le="+Inf"} 3
lat_seconds_sum{model="emotion"} 2.35
lat_seconds_count{model="emotion"} 3
`
	if got != want {
		t.Errorf("WritePrometheus output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
