package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// chromeEvent is one trace_event record in the Chrome/Perfetto JSON format:
// "X" complete events for spans, "M" metadata events for process and thread
// names. Field order follows the trace_event spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// processNames labels the clock-domain processes in the exported trace.
var processNames = map[int]string{
	PIDWall: "wall clock",
	PIDSim:  "simulated clock",
	PIDExec: "executor (wall clock)",
}

// WriteChromeTrace serializes spans as Chrome trace_event JSON
// ({"traceEvents": [...]}), the format chrome://tracing and Perfetto load
// directly. threadNames (optional) labels trace rows; unnamed rows keep
// their numeric thread ID. Output is deterministic: metadata first, then
// spans sorted by (pid, tid, start, name).
func WriteChromeTrace(w io.Writer, spans []Span, threadNames map[Thread]string) error {
	return writeChromeTrace(w, spans, threadNames, 0)
}

// WriteChromeTraceEpoch is WriteChromeTrace plus an "epochUnixUs" top-level
// field carrying the tracer's wall-clock epoch (µs since the Unix epoch).
// Perfetto ignores the extra key; StitchChromeTraces uses it to align
// wall-clock spans from tracers in different processes — each process's
// span timestamps are offsets from its own epoch, so cross-process stitching
// needs the epochs to translate them onto one timeline.
func WriteChromeTraceEpoch(w io.Writer, spans []Span, threadNames map[Thread]string, epoch time.Time) error {
	return writeChromeTrace(w, spans, threadNames, epoch.UnixMicro())
}

func writeChromeTrace(w io.Writer, spans []Span, threadNames map[Thread]string, epochUs int64) error {
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Name < b.Name
	})

	var events []chromeEvent
	pids := map[int]bool{}
	threads := map[Thread]bool{}
	for _, s := range sorted {
		pids[s.PID] = true
		threads[Thread{PID: s.PID, TID: s.TID}] = true
	}
	for _, pid := range sortedInts(pids) {
		name := processNames[pid]
		if name == "" {
			name = fmt.Sprintf("process %d", pid)
		}
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]any{"name": name},
		})
	}
	for _, th := range sortedThreads(threads) {
		name, ok := threadNames[th]
		if !ok {
			continue
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: th.PID, TID: th.TID,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range sorted {
		dur := s.Dur
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS: s.Start, Dur: &dur, PID: s.PID, TID: s.TID,
		}
		if len(s.Args) > 0 {
			ev.Args = make(map[string]any, len(s.Args))
			for _, a := range s.Args {
				ev.Args[a.Key] = a.Val
			}
		}
		events = append(events, ev)
	}

	doc := map[string]any{"traceEvents": events}
	if epochUs != 0 {
		doc["epochUnixUs"] = epochUs
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

func sortedInts(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedThreads(set map[Thread]bool) []Thread {
	out := make([]Thread, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].PID != out[j].PID {
			return out[i].PID < out[j].PID
		}
		return out[i].TID < out[j].TID
	})
	return out
}

// TreeDump renders spans as an indented plain-text tree, one section per
// trace row, nesting spans by interval containment — the terminal-friendly
// counterpart of the Chrome export.
func TreeDump(spans []Span, threadNames map[Thread]string) string {
	perThread := map[Thread][]Span{}
	for _, s := range spans {
		th := Thread{PID: s.PID, TID: s.TID}
		perThread[th] = append(perThread[th], s)
	}
	var b strings.Builder
	for _, th := range sortedThreadKeys(perThread) {
		label := threadNames[th]
		if label == "" {
			label = fmt.Sprintf("pid %d tid %d", th.PID, th.TID)
		}
		fmt.Fprintf(&b, "[%s]\n", label)
		rows := perThread[th]
		sort.SliceStable(rows, func(i, j int) bool {
			if rows[i].Start != rows[j].Start {
				return rows[i].Start < rows[j].Start
			}
			// Equal starts: the longer span is the parent.
			return rows[i].Dur > rows[j].Dur
		})
		// Containment stack: a span nests under the nearest predecessor
		// whose interval encloses it.
		var stack []Span
		for _, s := range rows {
			for len(stack) > 0 && s.Start >= stack[len(stack)-1].End() {
				stack = stack[:len(stack)-1]
			}
			fmt.Fprintf(&b, "  %s%-*s %s\n",
				strings.Repeat("  ", len(stack)),
				44-2*len(stack), s.Name,
				spanSuffix(s))
			stack = append(stack, s)
		}
	}
	return b.String()
}

func spanSuffix(s Span) string {
	out := fmt.Sprintf("%8.3fms @%.3fms", float64(s.Dur)/1e3, float64(s.Start)/1e3)
	for _, a := range s.Args {
		out += fmt.Sprintf(" %s=%v", a.Key, a.Val)
	}
	return out
}

func sortedThreadKeys(m map[Thread][]Span) []Thread {
	set := make(map[Thread]bool, len(m))
	for k := range m {
		set[k] = true
	}
	return sortedThreads(set)
}
