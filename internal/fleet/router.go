// Package fleet is the multi-worker serving tier: a TVM-RPC-tracker-style
// router that workers register with (device key + base URL + heartbeat),
// health-checked routing of /v1/infer across the fleet with consistent
// worker selection and retry-on-dead-worker, and fleet-wide aggregation of
// /statsz and /metricsz. One npserve process is one worker; nprouter fronts
// any number of them.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// WorkerInfo is one registered worker as reported on /fleet/workers.
type WorkerInfo struct {
	// Key is the worker's device key (tracker vocabulary): a stable name for
	// the device class + instance this worker serves on, e.g. "d9000-0".
	Key string `json:"key"`
	// URL is the worker's base URL (scheme://host:port).
	URL string `json:"url"`
	// Models are the routable model names from the worker's last /healthz
	// probe (endpoints and aliases both count).
	Models []string `json:"models,omitempty"`
	// Healthy means the last probe succeeded and the heartbeat is fresh.
	Healthy bool `json:"healthy"`
	// Draining means the worker answered its probe but refuses new work.
	Draining bool `json:"draining"`
	// Probes/Beats count health checks answered and heartbeats received.
	Probes uint64 `json:"probes"`
	Beats  uint64 `json:"beats"`
	// SLOBurning lists the routable model names whose SLO burn rate exceeded
	// 1.0 on the worker's last probe (endpoint names and the public aliases
	// pointing at them). Routing demotes the worker for those models.
	SLOBurning []string `json:"slo_burning,omitempty"`
}

type workerState struct {
	info     WorkerInfo
	lastBeat time.Time
	// slo is the worker's full per-model objective state from its last probe
	// (the /healthz slo block); the dashboard renders budget bars from it.
	slo []obs.SLOStatus
}

// Options tunes the router; zero values get defaults.
type Options struct {
	// HeartbeatTimeout marks a worker unhealthy when no heartbeat or
	// successful probe arrives within it (default 10s).
	HeartbeatTimeout time.Duration
	// HealthInterval is the probe loop period (default 2s).
	HealthInterval time.Duration
	// Client performs worker requests (default: 5s-timeout http.Client).
	Client *http.Client
	// Metrics receives the np_fleet_* instrument family (default: fresh
	// registry, exposed on the router's /metricsz).
	Metrics *obs.Registry
}

// Router tracks registered workers and routes inference across them.
type Router struct {
	opts    Options
	client  *http.Client
	metrics *obs.Registry
	tracer  *obs.Tracer
	track   *obs.Track
	now     func() time.Time
	start   time.Time

	mu      sync.RWMutex
	workers map[string]*workerState

	registeredG *obs.Gauge
	healthyG    *obs.Gauge
	retriedC    *obs.Counter
	failedC     *obs.Counter
	scrapeErrC  *obs.Counter
}

// NewRouter builds a router; Handler serves its HTTP surface and
// HealthCheckLoop keeps worker states fresh.
func NewRouter(opts Options) *Router {
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 10 * time.Second
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 2 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	rt := &Router{
		opts:    opts,
		client:  opts.Client,
		metrics: opts.Metrics,
		tracer:  obs.NewTracer(0),
		now:     time.Now,
		workers: map[string]*workerState{},
	}
	rt.track = rt.tracer.NewTrack("router")
	rt.start = rt.now()
	rt.registeredG = rt.metrics.Gauge("np_fleet_workers_registered",
		"Workers currently registered with the router.", obs.L())
	rt.healthyG = rt.metrics.Gauge("np_fleet_workers_healthy",
		"Registered workers that are healthy and not draining.", obs.L())
	rt.retriedC = rt.metrics.Counter("np_fleet_retried_requests_total",
		"Inference attempts rerouted after a worker failed or refused.", obs.L())
	rt.failedC = rt.metrics.Counter("np_fleet_failed_requests_total",
		"Inference requests that exhausted every candidate worker.", obs.L())
	rt.scrapeErrC = rt.metrics.Counter("np_fleet_scrape_errors_total",
		"Worker stat/metric scrapes that failed during aggregation.", obs.L())
	return rt
}

// Metrics returns the router's instrument registry.
func (rt *Router) Metrics() *obs.Registry { return rt.metrics }

// Tracer returns the router's span tracer; routed requests leave a
// route:<model> span per attempt, stamped with the trace ID and worker key.
func (rt *Router) Tracer() *obs.Tracer { return rt.tracer }

// ----------------------------------------------------------------- tracking

// RegisterRequest is the /fleet/register body a worker posts on startup.
type RegisterRequest struct {
	Key string `json:"key"`
	URL string `json:"url"`
}

// Register adds (or re-adds) a worker and probes it synchronously, so a
// successful registration means the worker is routable immediately.
func (rt *Router) Register(key, url string) error {
	if key == "" || url == "" {
		return errors.New("fleet: register needs key and url")
	}
	rt.mu.Lock()
	w, ok := rt.workers[key]
	if !ok {
		w = &workerState{}
		rt.workers[key] = w
	}
	w.info.Key, w.info.URL = key, url
	w.lastBeat = rt.now()
	rt.mu.Unlock()
	rt.probe(key)
	rt.updateGauges()
	return nil
}

// Heartbeat refreshes a worker's liveness; unknown keys error so the agent
// re-registers (the tracker may have restarted and lost state).
func (rt *Router) Heartbeat(key string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	w, ok := rt.workers[key]
	if !ok {
		return fmt.Errorf("fleet: unknown worker %q", key)
	}
	w.lastBeat = rt.now()
	w.info.Beats++
	return nil
}

// Deregister removes a worker (graceful shutdown path).
func (rt *Router) Deregister(key string) {
	rt.mu.Lock()
	delete(rt.workers, key)
	rt.mu.Unlock()
	rt.updateGauges()
}

// Workers snapshots the fleet state, sorted by key.
func (rt *Router) Workers() []WorkerInfo {
	rt.mu.RLock()
	out := make([]WorkerInfo, 0, len(rt.workers))
	for _, w := range rt.workers {
		out = append(out, w.info)
	}
	rt.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// probe health-checks one worker and folds the result into its state.
func (rt *Router) probe(key string) {
	rt.mu.RLock()
	w, ok := rt.workers[key]
	var url string
	if ok {
		url = w.info.URL
	}
	rt.mu.RUnlock()
	if !ok {
		return
	}
	var h serve.HealthResponse
	err := rt.getJSON(url+"/healthz", &h)
	rt.mu.Lock()
	if w, ok := rt.workers[key]; ok {
		if err != nil {
			w.info.Healthy = false
		} else {
			w.info.Healthy = true
			w.info.Draining = h.Draining
			w.info.Models = h.Models
			w.info.SLOBurning = burningModels(h)
			w.slo = h.SLO
			w.info.Probes++
			w.lastBeat = rt.now()
		}
	}
	rt.mu.Unlock()
}

// burningModels extracts the routable names whose SLO is unhealthy from a
// worker's health report. SLOs are tracked per endpoint name ("model@version"
// for registry deploys), but routing addresses public aliases — so every
// alias pointing at a burning endpoint is penalized under its public name
// too.
func burningModels(h serve.HealthResponse) []string {
	var out []string
	for _, st := range h.SLO {
		if st.Healthy {
			continue
		}
		out = append(out, st.Model)
		for public, target := range h.Aliases {
			if target == st.Model {
				out = append(out, public)
			}
		}
	}
	sort.Strings(out)
	return out
}

// HealthCheckLoop probes every worker each HealthInterval and expires the
// ones whose heartbeat went stale, until ctx is done.
func (rt *Router) HealthCheckLoop(ctx context.Context) {
	t := time.NewTicker(rt.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.CheckWorkers()
		}
	}
}

// CheckWorkers runs one probe pass over the fleet (the loop body, exported
// for deterministic tests and the smoke harness).
func (rt *Router) CheckWorkers() {
	rt.mu.RLock()
	keys := make([]string, 0, len(rt.workers))
	for k := range rt.workers {
		keys = append(keys, k)
	}
	rt.mu.RUnlock()
	for _, k := range keys {
		rt.probe(k)
	}
	cutoff := rt.now().Add(-rt.opts.HeartbeatTimeout)
	rt.mu.Lock()
	for _, w := range rt.workers {
		if w.lastBeat.Before(cutoff) {
			w.info.Healthy = false
		}
	}
	rt.mu.Unlock()
	rt.updateGauges()
}

func (rt *Router) updateGauges() {
	rt.mu.RLock()
	total, healthy := len(rt.workers), 0
	for _, w := range rt.workers {
		if w.info.Healthy && !w.info.Draining {
			healthy++
		}
	}
	rt.mu.RUnlock()
	rt.registeredG.Set(float64(total))
	rt.healthyG.Set(float64(healthy))
}

// ------------------------------------------------------------------ routing

// candidates ranks the healthy, non-draining workers serving model: workers
// whose SLO for the model is within budget come first (the SLO routing
// penalty), then by rendezvous (highest-random-weight) hash of (model, shard,
// worker key) — the same (model, shard) always prefers the same worker while
// every worker stays a deterministic fallback; adding or losing one worker
// only moves the shards that touched it. A burning worker is still routable
// (it sorts last, keeping it as fallback when it is the only candidate).
func (rt *Router) candidates(model string, shard uint64) []WorkerInfo {
	rt.mu.RLock()
	var cands []WorkerInfo
	for _, w := range rt.workers {
		if !w.info.Healthy || w.info.Draining {
			continue
		}
		for _, m := range w.info.Models {
			if m == model {
				cands = append(cands, w.info)
				break
			}
		}
	}
	rt.mu.RUnlock()
	sort.Slice(cands, func(i, j int) bool {
		bi, bj := sloBurns(cands[i], model), sloBurns(cands[j], model)
		if bi != bj {
			return !bi
		}
		hi, hj := rendezvous(model, shard, cands[i].Key), rendezvous(model, shard, cands[j].Key)
		if hi != hj {
			return hi > hj
		}
		return cands[i].Key < cands[j].Key
	})
	return cands
}

// sloBurns reports whether the worker's last probe flagged model as burning
// its error budget.
func sloBurns(wi WorkerInfo, model string) bool {
	for _, m := range wi.SLOBurning {
		if m == model {
			return true
		}
	}
	return false
}

func rendezvous(model string, shard uint64, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, model)
	h.Write([]byte{0})
	var b [8]byte
	for i := range b {
		b[i] = byte(shard >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte{0})
	io.WriteString(h, key)
	return h.Sum64()
}

// WorkerHeader names the response header carrying the key of the worker
// that served a routed request.
const WorkerHeader = "X-NP-Worker"

// handleInfer routes one inference: decode enough of the body to learn
// (model, seed), walk the rendezvous-ranked candidates, and proxy to the
// first worker that accepts. Transport failures mark the worker unhealthy
// and the request retries on the next candidate; 503 (draining) retries
// without the penalty. Responses stream back verbatim plus WorkerHeader.
func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var req serve.InferRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	// The router is the fleet's first edge: adopt the caller's trace context
	// (minting a child span for this hop) or mint a fresh trace, forward it to
	// the worker on the proxied request, and stamp every response with it.
	tc, traced := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader))
	if traced {
		tc = tc.Child()
	} else {
		tc = obs.MintTrace()
	}
	w.Header().Set(obs.TraceHeader, tc.String())

	cands := rt.candidates(req.Model, req.Seed)
	if len(cands) == 0 {
		rt.failedC.Inc()
		writeErr(w, http.StatusServiceUnavailable, fmt.Sprintf("no healthy worker serves model %q", req.Model))
		return
	}
	routeStart := rt.now()
	for i, cand := range cands {
		if i > 0 {
			rt.retriedC.Inc()
		}
		preq, err := http.NewRequest(http.MethodPost, cand.URL+"/v1/infer", bytes.NewReader(body))
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err.Error())
			return
		}
		preq.Header.Set("Content-Type", "application/json")
		preq.Header.Set(obs.TraceHeader, tc.String())
		resp, err := rt.client.Do(preq)
		if err != nil {
			// Transport-dead worker: mark it down so routing skips it until a
			// probe or heartbeat revives it, and fail over.
			rt.markUnhealthy(cand.Key)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining or overload-shedding worker: it is alive (it answered),
			// so no health penalty — just honor the hint and fail over.
			resp.Body.Close()
			continue
		}
		rt.routedCounter(cand.Key, req.Model).Inc()
		rt.track.Emit("route:"+req.Model, "fleet", routeStart, time.Since(routeStart),
			obs.A(obs.TraceArg, tc.TraceID), obs.A("worker", cand.Key), obs.A("attempt", i+1))
		w.Header().Set(WorkerHeader, cand.Key)
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	rt.failedC.Inc()
	rt.updateGauges()
	rt.track.Emit("route-failed:"+req.Model, "fleet", routeStart, time.Since(routeStart),
		obs.A(obs.TraceArg, tc.TraceID), obs.A("candidates", len(cands)))
	w.Header().Set("Retry-After", strconv.Itoa(serve.DrainRetryAfterSeconds))
	writeErr(w, http.StatusServiceUnavailable, fmt.Sprintf("all %d workers for model %q failed or refused", len(cands), req.Model))
}

func (rt *Router) routedCounter(workerKey, model string) *obs.Counter {
	return rt.metrics.Counter("np_fleet_routed_requests_total",
		"Inference requests routed to a worker, by worker key and model.",
		obs.L("worker", workerKey, "model", model))
}

func (rt *Router) markUnhealthy(key string) {
	rt.mu.Lock()
	if w, ok := rt.workers[key]; ok {
		w.info.Healthy = false
	}
	rt.mu.Unlock()
	rt.updateGauges()
}

// -------------------------------------------------------------- aggregation

// FleetStats is the router's /statsz reply: the fleet roster plus each
// healthy worker's raw /statsz document under its key.
type FleetStats struct {
	UptimeMs float64                    `json:"uptime_ms"`
	Workers  []WorkerInfo               `json:"workers"`
	Routed   float64                    `json:"routed_requests"`
	Retried  float64                    `json:"retried_requests"`
	Failed   float64                    `json:"failed_requests"`
	PerWork  map[string]json.RawMessage `json:"worker_statsz"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	fs := FleetStats{
		UptimeMs: float64(rt.now().Sub(rt.start)) / float64(time.Millisecond),
		Workers:  rt.Workers(),
		Retried:  rt.retriedC.Value(),
		Failed:   rt.failedC.Value(),
		PerWork:  map[string]json.RawMessage{},
	}
	for _, wi := range fs.Workers {
		if !wi.Healthy {
			continue
		}
		var raw json.RawMessage
		if err := rt.getJSON(wi.URL+"/statsz", &raw); err != nil {
			rt.scrapeErrC.Inc()
			continue
		}
		fs.PerWork[wi.Key] = raw
	}
	// Routed total across all (worker, model) series: recovered from the
	// per-worker statsz is racy, so sum our own counter series instead.
	fs.Routed = rt.sumRouted()
	writeJSONBody(w, fs)
}

func (rt *Router) sumRouted() float64 {
	var buf bytes.Buffer
	rt.metrics.WritePrometheus(&buf)
	var total float64
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("np_fleet_routed_requests_total")) {
			continue
		}
		if i := bytes.LastIndexByte(line, ' '); i >= 0 {
			if v, err := strconv.ParseFloat(string(line[i+1:]), 64); err == nil {
				total += v
			}
		}
	}
	return total
}

// handleMetrics merges the fleet's Prometheus expositions: the router's own
// np_fleet_* families verbatim, plus every healthy worker's /metricsz with a
// worker="<key>" label injected (obs.Merger semantics: one HELP/TYPE header
// per family fleet-wide).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := obs.NewMerger()
	var own bytes.Buffer
	rt.metrics.WritePrometheus(&own)
	if err := m.Add("", "", own.Bytes()); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	for _, wi := range rt.Workers() {
		if !wi.Healthy {
			continue
		}
		resp, err := rt.client.Get(wi.URL + "/metricsz")
		if err != nil {
			rt.scrapeErrC.Inc()
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			rt.scrapeErrC.Inc()
			continue
		}
		if err := m.Add("worker", wi.Key, body); err != nil {
			rt.scrapeErrC.Inc()
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WriteTo(w)
}

// handleTracez assembles the fleet-wide distributed trace: the router's own
// route spans plus every healthy worker's /tracez export, stitched onto one
// wall-clock timeline with per-worker process rows (obs.StitchChromeTraces).
// ?id=<32 hex trace id> narrows every part to one request — the usual way in:
// take the trace ID a response was stamped with and load the result in
// Perfetto.
func (rt *Router) handleTracez(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id != "" {
		if err := obs.ValidTraceID(id); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	spans, names := rt.tracer.Snapshot()
	if id != "" {
		spans = obs.FilterByTraceID(spans, id)
	}
	var own bytes.Buffer
	if err := obs.WriteChromeTraceEpoch(&own, spans, names, rt.tracer.Epoch()); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	parts := []obs.TracePart{{Label: "router", JSON: own.Bytes()}}
	for _, wi := range rt.Workers() {
		if !wi.Healthy {
			continue
		}
		url := wi.URL + "/tracez"
		if id != "" {
			url += "?id=" + id
		}
		resp, err := rt.client.Get(url)
		if err != nil {
			rt.scrapeErrC.Inc()
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			rt.scrapeErrC.Inc()
			continue
		}
		parts = append(parts, obs.TracePart{Label: "worker " + wi.Key, JSON: body})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.StitchChromeTraces(w, parts); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
	}
}

// FleetDebugRequests is the router's /debugz/requests reply: every healthy
// worker's flight-recorder lanes merged — Recent ordered by completion time,
// Slow worst-first — with each record's worker key intact and per-worker
// dropped counts summed.
type FleetDebugRequests struct {
	Workers []string           `json:"workers"`
	Dropped uint64             `json:"dropped"`
	Recent  []obs.FlightRecord `json:"recent"`
	Slow    []obs.FlightRecord `json:"slow"`
}

func (rt *Router) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	var merged FleetDebugRequests
	for _, wi := range rt.Workers() {
		if !wi.Healthy {
			continue
		}
		var dr serve.DebugRequestsResponse
		if err := rt.getJSON(wi.URL+"/debugz/requests", &dr); err != nil {
			rt.scrapeErrC.Inc()
			continue
		}
		merged.Workers = append(merged.Workers, wi.Key)
		merged.Dropped += dr.Dropped
		merged.Recent = append(merged.Recent, dr.Recent...)
		merged.Slow = append(merged.Slow, dr.Slow...)
	}
	sort.Slice(merged.Recent, func(i, j int) bool {
		return merged.Recent[i].UnixMicro < merged.Recent[j].UnixMicro
	})
	sort.Slice(merged.Slow, func(i, j int) bool {
		return merged.Slow[i].TotalMs > merged.Slow[j].TotalMs
	})
	writeJSONBody(w, merged)
}

// --------------------------------------------------------------------- HTTP

// Handler returns the router's HTTP surface:
//
//	POST /fleet/register   {"key":"w1","url":"http://..."} → tracked + probed
//	POST /fleet/heartbeat  {"key":"w1"}                    → liveness refresh
//	POST /fleet/deregister {"key":"w1"}                    → removed
//	GET  /fleet/workers                                    → fleet roster
//	POST /v1/infer                                         → routed inference
//	GET  /statsz                                           → fleet-wide stats
//	GET  /metricsz                                         → merged exposition
//	GET  /tracez[?id=<trace>]                              → stitched fleet trace
//	GET  /debugz/requests                                  → merged flight records
//	GET  /dashboardz                                       → SLO health dashboard
//	GET  /healthz                                          → router liveness
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !postBody(w, r, &req) {
			return
		}
		if err := rt.Register(req.Key, req.URL); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSONBody(w, map[string]any{"registered": req.Key})
	})
	mux.HandleFunc("/fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !postBody(w, r, &req) {
			return
		}
		if err := rt.Heartbeat(req.Key); err != nil {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSONBody(w, map[string]any{"ok": true})
	})
	mux.HandleFunc("/fleet/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !postBody(w, r, &req) {
			return
		}
		rt.Deregister(req.Key)
		writeJSONBody(w, map[string]any{"deregistered": req.Key})
	})
	mux.HandleFunc("/fleet/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSONBody(w, map[string]any{"workers": rt.Workers()})
	})
	mux.HandleFunc("/v1/infer", rt.handleInfer)
	mux.HandleFunc("/statsz", rt.handleStats)
	mux.HandleFunc("/metricsz", rt.handleMetrics)
	mux.HandleFunc("/tracez", rt.handleTracez)
	mux.HandleFunc("/debugz/requests", rt.handleDebugRequests)
	mux.HandleFunc("/dashboardz", rt.handleDashboard)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ws := rt.Workers()
		healthy := 0
		for _, wi := range ws {
			if wi.Healthy && !wi.Draining {
				healthy++
			}
		}
		writeJSONBody(w, map[string]any{"status": "ok", "workers": len(ws), "healthy": healthy})
	})
	return mux
}

func (rt *Router) getJSON(url string, v any) error {
	resp, err := rt.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func postBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSONBody(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
