// Package fleet is the multi-worker serving tier: a TVM-RPC-tracker-style
// router that workers register with (device key + base URL + heartbeat),
// health-checked routing of /v1/infer across the fleet with consistent
// worker selection and retry-on-dead-worker, and fleet-wide aggregation of
// /statsz and /metricsz. One npserve process is one worker; nprouter fronts
// any number of them.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// WorkerInfo is one registered worker as reported on /fleet/workers.
type WorkerInfo struct {
	// Key is the worker's device key (tracker vocabulary): a stable name for
	// the device class + instance this worker serves on, e.g. "d9000-0".
	Key string `json:"key"`
	// URL is the worker's base URL (scheme://host:port).
	URL string `json:"url"`
	// Models are the routable model names from the worker's last /healthz
	// probe (endpoints and aliases both count).
	Models []string `json:"models,omitempty"`
	// Healthy means the last probe succeeded and the heartbeat is fresh.
	Healthy bool `json:"healthy"`
	// Draining means the worker answered its probe but refuses new work.
	Draining bool `json:"draining"`
	// Probes/Beats count health checks answered and heartbeats received.
	Probes uint64 `json:"probes"`
	Beats  uint64 `json:"beats"`
}

type workerState struct {
	info     WorkerInfo
	lastBeat time.Time
}

// Options tunes the router; zero values get defaults.
type Options struct {
	// HeartbeatTimeout marks a worker unhealthy when no heartbeat or
	// successful probe arrives within it (default 10s).
	HeartbeatTimeout time.Duration
	// HealthInterval is the probe loop period (default 2s).
	HealthInterval time.Duration
	// Client performs worker requests (default: 5s-timeout http.Client).
	Client *http.Client
	// Metrics receives the np_fleet_* instrument family (default: fresh
	// registry, exposed on the router's /metricsz).
	Metrics *obs.Registry
}

// Router tracks registered workers and routes inference across them.
type Router struct {
	opts    Options
	client  *http.Client
	metrics *obs.Registry
	now     func() time.Time
	start   time.Time

	mu      sync.RWMutex
	workers map[string]*workerState

	registeredG *obs.Gauge
	healthyG    *obs.Gauge
	retriedC    *obs.Counter
	failedC     *obs.Counter
	scrapeErrC  *obs.Counter
}

// NewRouter builds a router; Handler serves its HTTP surface and
// HealthCheckLoop keeps worker states fresh.
func NewRouter(opts Options) *Router {
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 10 * time.Second
	}
	if opts.HealthInterval <= 0 {
		opts.HealthInterval = 2 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 5 * time.Second}
	}
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	rt := &Router{
		opts:    opts,
		client:  opts.Client,
		metrics: opts.Metrics,
		now:     time.Now,
		workers: map[string]*workerState{},
	}
	rt.start = rt.now()
	rt.registeredG = rt.metrics.Gauge("np_fleet_workers_registered",
		"Workers currently registered with the router.", obs.L())
	rt.healthyG = rt.metrics.Gauge("np_fleet_workers_healthy",
		"Registered workers that are healthy and not draining.", obs.L())
	rt.retriedC = rt.metrics.Counter("np_fleet_retried_requests_total",
		"Inference attempts rerouted after a worker failed or refused.", obs.L())
	rt.failedC = rt.metrics.Counter("np_fleet_failed_requests_total",
		"Inference requests that exhausted every candidate worker.", obs.L())
	rt.scrapeErrC = rt.metrics.Counter("np_fleet_scrape_errors_total",
		"Worker stat/metric scrapes that failed during aggregation.", obs.L())
	return rt
}

// Metrics returns the router's instrument registry.
func (rt *Router) Metrics() *obs.Registry { return rt.metrics }

// ----------------------------------------------------------------- tracking

// RegisterRequest is the /fleet/register body a worker posts on startup.
type RegisterRequest struct {
	Key string `json:"key"`
	URL string `json:"url"`
}

// Register adds (or re-adds) a worker and probes it synchronously, so a
// successful registration means the worker is routable immediately.
func (rt *Router) Register(key, url string) error {
	if key == "" || url == "" {
		return errors.New("fleet: register needs key and url")
	}
	rt.mu.Lock()
	w, ok := rt.workers[key]
	if !ok {
		w = &workerState{}
		rt.workers[key] = w
	}
	w.info.Key, w.info.URL = key, url
	w.lastBeat = rt.now()
	rt.mu.Unlock()
	rt.probe(key)
	rt.updateGauges()
	return nil
}

// Heartbeat refreshes a worker's liveness; unknown keys error so the agent
// re-registers (the tracker may have restarted and lost state).
func (rt *Router) Heartbeat(key string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	w, ok := rt.workers[key]
	if !ok {
		return fmt.Errorf("fleet: unknown worker %q", key)
	}
	w.lastBeat = rt.now()
	w.info.Beats++
	return nil
}

// Deregister removes a worker (graceful shutdown path).
func (rt *Router) Deregister(key string) {
	rt.mu.Lock()
	delete(rt.workers, key)
	rt.mu.Unlock()
	rt.updateGauges()
}

// Workers snapshots the fleet state, sorted by key.
func (rt *Router) Workers() []WorkerInfo {
	rt.mu.RLock()
	out := make([]WorkerInfo, 0, len(rt.workers))
	for _, w := range rt.workers {
		out = append(out, w.info)
	}
	rt.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// probe health-checks one worker and folds the result into its state.
func (rt *Router) probe(key string) {
	rt.mu.RLock()
	w, ok := rt.workers[key]
	var url string
	if ok {
		url = w.info.URL
	}
	rt.mu.RUnlock()
	if !ok {
		return
	}
	var h serve.HealthResponse
	err := rt.getJSON(url+"/healthz", &h)
	rt.mu.Lock()
	if w, ok := rt.workers[key]; ok {
		if err != nil {
			w.info.Healthy = false
		} else {
			w.info.Healthy = true
			w.info.Draining = h.Draining
			w.info.Models = h.Models
			w.info.Probes++
			w.lastBeat = rt.now()
		}
	}
	rt.mu.Unlock()
}

// HealthCheckLoop probes every worker each HealthInterval and expires the
// ones whose heartbeat went stale, until ctx is done.
func (rt *Router) HealthCheckLoop(ctx context.Context) {
	t := time.NewTicker(rt.opts.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.CheckWorkers()
		}
	}
}

// CheckWorkers runs one probe pass over the fleet (the loop body, exported
// for deterministic tests and the smoke harness).
func (rt *Router) CheckWorkers() {
	rt.mu.RLock()
	keys := make([]string, 0, len(rt.workers))
	for k := range rt.workers {
		keys = append(keys, k)
	}
	rt.mu.RUnlock()
	for _, k := range keys {
		rt.probe(k)
	}
	cutoff := rt.now().Add(-rt.opts.HeartbeatTimeout)
	rt.mu.Lock()
	for _, w := range rt.workers {
		if w.lastBeat.Before(cutoff) {
			w.info.Healthy = false
		}
	}
	rt.mu.Unlock()
	rt.updateGauges()
}

func (rt *Router) updateGauges() {
	rt.mu.RLock()
	total, healthy := len(rt.workers), 0
	for _, w := range rt.workers {
		if w.info.Healthy && !w.info.Draining {
			healthy++
		}
	}
	rt.mu.RUnlock()
	rt.registeredG.Set(float64(total))
	rt.healthyG.Set(float64(healthy))
}

// ------------------------------------------------------------------ routing

// candidates ranks the healthy, non-draining workers serving model by
// rendezvous (highest-random-weight) hash of (model, shard, worker key):
// the same (model, shard) always prefers the same worker while every worker
// stays a deterministic fallback — adding or losing one worker only moves
// the shards that touched it.
func (rt *Router) candidates(model string, shard uint64) []WorkerInfo {
	rt.mu.RLock()
	var cands []WorkerInfo
	for _, w := range rt.workers {
		if !w.info.Healthy || w.info.Draining {
			continue
		}
		for _, m := range w.info.Models {
			if m == model {
				cands = append(cands, w.info)
				break
			}
		}
	}
	rt.mu.RUnlock()
	sort.Slice(cands, func(i, j int) bool {
		hi, hj := rendezvous(model, shard, cands[i].Key), rendezvous(model, shard, cands[j].Key)
		if hi != hj {
			return hi > hj
		}
		return cands[i].Key < cands[j].Key
	})
	return cands
}

func rendezvous(model string, shard uint64, key string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, model)
	h.Write([]byte{0})
	var b [8]byte
	for i := range b {
		b[i] = byte(shard >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte{0})
	io.WriteString(h, key)
	return h.Sum64()
}

// WorkerHeader names the response header carrying the key of the worker
// that served a routed request.
const WorkerHeader = "X-NP-Worker"

// handleInfer routes one inference: decode enough of the body to learn
// (model, seed), walk the rendezvous-ranked candidates, and proxy to the
// first worker that accepts. Transport failures mark the worker unhealthy
// and the request retries on the next candidate; 503 (draining) retries
// without the penalty. Responses stream back verbatim plus WorkerHeader.
func (rt *Router) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading body: "+err.Error())
		return
	}
	var req serve.InferRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	cands := rt.candidates(req.Model, req.Seed)
	if len(cands) == 0 {
		rt.failedC.Inc()
		writeErr(w, http.StatusServiceUnavailable, fmt.Sprintf("no healthy worker serves model %q", req.Model))
		return
	}
	for i, cand := range cands {
		if i > 0 {
			rt.retriedC.Inc()
		}
		resp, err := rt.client.Post(cand.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			// Transport-dead worker: mark it down so routing skips it until a
			// probe or heartbeat revives it, and fail over.
			rt.markUnhealthy(cand.Key)
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			// Draining or overload-shedding worker: it is alive (it answered),
			// so no health penalty — just honor the hint and fail over.
			resp.Body.Close()
			continue
		}
		rt.routedCounter(cand.Key, req.Model).Inc()
		w.Header().Set(WorkerHeader, cand.Key)
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
		resp.Body.Close()
		return
	}
	rt.failedC.Inc()
	rt.updateGauges()
	w.Header().Set("Retry-After", strconv.Itoa(serve.DrainRetryAfterSeconds))
	writeErr(w, http.StatusServiceUnavailable, fmt.Sprintf("all %d workers for model %q failed or refused", len(cands), req.Model))
}

func (rt *Router) routedCounter(workerKey, model string) *obs.Counter {
	return rt.metrics.Counter("np_fleet_routed_requests_total",
		"Inference requests routed to a worker, by worker key and model.",
		obs.L("worker", workerKey, "model", model))
}

func (rt *Router) markUnhealthy(key string) {
	rt.mu.Lock()
	if w, ok := rt.workers[key]; ok {
		w.info.Healthy = false
	}
	rt.mu.Unlock()
	rt.updateGauges()
}

// -------------------------------------------------------------- aggregation

// FleetStats is the router's /statsz reply: the fleet roster plus each
// healthy worker's raw /statsz document under its key.
type FleetStats struct {
	UptimeMs float64                    `json:"uptime_ms"`
	Workers  []WorkerInfo               `json:"workers"`
	Routed   float64                    `json:"routed_requests"`
	Retried  float64                    `json:"retried_requests"`
	Failed   float64                    `json:"failed_requests"`
	PerWork  map[string]json.RawMessage `json:"worker_statsz"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	fs := FleetStats{
		UptimeMs: float64(rt.now().Sub(rt.start)) / float64(time.Millisecond),
		Workers:  rt.Workers(),
		Retried:  rt.retriedC.Value(),
		Failed:   rt.failedC.Value(),
		PerWork:  map[string]json.RawMessage{},
	}
	for _, wi := range fs.Workers {
		if !wi.Healthy {
			continue
		}
		var raw json.RawMessage
		if err := rt.getJSON(wi.URL+"/statsz", &raw); err != nil {
			rt.scrapeErrC.Inc()
			continue
		}
		fs.PerWork[wi.Key] = raw
	}
	// Routed total across all (worker, model) series: recovered from the
	// per-worker statsz is racy, so sum our own counter series instead.
	fs.Routed = rt.sumRouted()
	writeJSONBody(w, fs)
}

func (rt *Router) sumRouted() float64 {
	var buf bytes.Buffer
	rt.metrics.WritePrometheus(&buf)
	var total float64
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("np_fleet_routed_requests_total")) {
			continue
		}
		if i := bytes.LastIndexByte(line, ' '); i >= 0 {
			if v, err := strconv.ParseFloat(string(line[i+1:]), 64); err == nil {
				total += v
			}
		}
	}
	return total
}

// handleMetrics merges the fleet's Prometheus expositions: the router's own
// np_fleet_* families verbatim, plus every healthy worker's /metricsz with a
// worker="<key>" label injected (obs.Merger semantics: one HELP/TYPE header
// per family fleet-wide).
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := obs.NewMerger()
	var own bytes.Buffer
	rt.metrics.WritePrometheus(&own)
	if err := m.Add("", "", own.Bytes()); err != nil {
		writeErr(w, http.StatusInternalServerError, err.Error())
		return
	}
	for _, wi := range rt.Workers() {
		if !wi.Healthy {
			continue
		}
		resp, err := rt.client.Get(wi.URL + "/metricsz")
		if err != nil {
			rt.scrapeErrC.Inc()
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			rt.scrapeErrC.Inc()
			continue
		}
		if err := m.Add("worker", wi.Key, body); err != nil {
			rt.scrapeErrC.Inc()
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	m.WriteTo(w)
}

// --------------------------------------------------------------------- HTTP

// Handler returns the router's HTTP surface:
//
//	POST /fleet/register   {"key":"w1","url":"http://..."} → tracked + probed
//	POST /fleet/heartbeat  {"key":"w1"}                    → liveness refresh
//	POST /fleet/deregister {"key":"w1"}                    → removed
//	GET  /fleet/workers                                    → fleet roster
//	POST /v1/infer                                         → routed inference
//	GET  /statsz                                           → fleet-wide stats
//	GET  /metricsz                                         → merged exposition
//	GET  /healthz                                          → router liveness
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fleet/register", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !postBody(w, r, &req) {
			return
		}
		if err := rt.Register(req.Key, req.URL); err != nil {
			writeErr(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSONBody(w, map[string]any{"registered": req.Key})
	})
	mux.HandleFunc("/fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !postBody(w, r, &req) {
			return
		}
		if err := rt.Heartbeat(req.Key); err != nil {
			writeErr(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSONBody(w, map[string]any{"ok": true})
	})
	mux.HandleFunc("/fleet/deregister", func(w http.ResponseWriter, r *http.Request) {
		var req RegisterRequest
		if !postBody(w, r, &req) {
			return
		}
		rt.Deregister(req.Key)
		writeJSONBody(w, map[string]any{"deregistered": req.Key})
	})
	mux.HandleFunc("/fleet/workers", func(w http.ResponseWriter, r *http.Request) {
		writeJSONBody(w, map[string]any{"workers": rt.Workers()})
	})
	mux.HandleFunc("/v1/infer", rt.handleInfer)
	mux.HandleFunc("/statsz", rt.handleStats)
	mux.HandleFunc("/metricsz", rt.handleMetrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		ws := rt.Workers()
		healthy := 0
		for _, wi := range ws {
			if wi.Healthy && !wi.Draining {
				healthy++
			}
		}
		writeJSONBody(w, map[string]any{"status": "ok", "workers": len(ws), "healthy": healthy})
	})
	return mux
}

func (rt *Router) getJSON(url string, v any) error {
	resp, err := rt.client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func postBody(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSONBody(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
