package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/runtime"
	"repro/internal/serve"
)

func newWorker(t *testing.T, model string) (*serve.Server, *httptest.Server) {
	t.Helper()
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.NewServer()
	if err := s.Register(model, lib, serve.ModelOptions{Pool: 1, QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, ts
}

func registerWorker(t *testing.T, routerURL, key, workerURL string) {
	t.Helper()
	body, _ := json.Marshal(RegisterRequest{Key: key, URL: workerURL})
	resp, err := http.Post(routerURL+"/fleet/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register %s: status %d", key, resp.StatusCode)
	}
}

func inferVia(t *testing.T, routerURL string, seed uint64) (*http.Response, serve.InferResponse) {
	t.Helper()
	body, _ := json.Marshal(serve.InferRequest{Model: "emotion", Seed: seed})
	resp, err := http.Post(routerURL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ir serve.InferResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
	}
	return resp, ir
}

// TestRouterRoutesConsistentlyAndFailsOver is the tracker/router core: two
// registered workers serve one model, the same (model, seed) always lands on
// the same worker, and killing a worker reroutes its shards to the survivor
// while the roster marks it unhealthy.
func TestRouterRoutesConsistentlyAndFailsOver(t *testing.T) {
	_, w1 := newWorker(t, "emotion")
	_, w2 := newWorker(t, "emotion")
	rt := NewRouter(Options{HealthInterval: 10 * time.Millisecond, HeartbeatTimeout: time.Hour})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	registerWorker(t, rts.URL, "w1", w1.URL)
	registerWorker(t, rts.URL, "w2", w2.URL)

	// Consistent routing: each seed pins to one worker across repeats.
	pinned := map[uint64]string{}
	usedWorkers := map[string]bool{}
	for _, seed := range []uint64{1, 2, 3, 4, 5, 6, 7, 8} {
		for rep := 0; rep < 2; rep++ {
			resp, ir := inferVia(t, rts.URL, seed)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
			}
			if len(ir.Outputs) == 0 {
				t.Fatalf("seed %d: no outputs", seed)
			}
			wk := resp.Header.Get(WorkerHeader)
			if wk == "" {
				t.Fatalf("seed %d: missing %s header", seed, WorkerHeader)
			}
			usedWorkers[wk] = true
			if prev, ok := pinned[seed]; ok && prev != wk {
				t.Fatalf("seed %d routed to %s then %s: not consistent", seed, prev, wk)
			}
			pinned[seed] = wk
		}
	}
	if len(usedWorkers) != 2 {
		t.Errorf("8 seeds all routed to %v; want both workers used", usedWorkers)
	}

	// Kill w1: its shards fail over to w2, and the roster notices.
	w1.Close()
	for seed := uint64(1); seed <= 8; seed++ {
		resp, _ := inferVia(t, rts.URL, seed)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d after kill: status %d", seed, resp.StatusCode)
		}
		if wk := resp.Header.Get(WorkerHeader); wk != "w2" {
			t.Fatalf("seed %d after kill routed to %q, want w2", seed, wk)
		}
	}
	var roster struct{ Workers []WorkerInfo }
	mustGetJSON(t, rts.URL+"/fleet/workers", &roster)
	states := map[string]bool{}
	for _, wi := range roster.Workers {
		states[wi.Key] = wi.Healthy
	}
	if states["w1"] || !states["w2"] {
		t.Errorf("roster health %v, want w1 down, w2 up", states)
	}

	// Unknown model: no candidates, 503.
	body, _ := json.Marshal(serve.InferRequest{Model: "nope", Seed: 1})
	resp, err := http.Post(rts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unknown model status %d, want 503", resp.StatusCode)
	}
}

// TestRouterAggregatesStatsAndMetrics pins the fleet observability surface:
// /statsz nests each worker's document under its key, and /metricsz merges
// worker expositions under injected worker labels alongside np_fleet_*.
func TestRouterAggregatesStatsAndMetrics(t *testing.T) {
	_, w1 := newWorker(t, "emotion")
	_, w2 := newWorker(t, "emotion")
	rt := NewRouter(Options{})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	registerWorker(t, rts.URL, "w1", w1.URL)
	registerWorker(t, rts.URL, "w2", w2.URL)
	for seed := uint64(1); seed <= 4; seed++ {
		if resp, _ := inferVia(t, rts.URL, seed); resp.StatusCode != http.StatusOK {
			t.Fatalf("seed %d: status %d", seed, resp.StatusCode)
		}
	}

	var fs FleetStats
	mustGetJSON(t, rts.URL+"/statsz", &fs)
	if len(fs.Workers) != 2 {
		t.Fatalf("statsz workers %d, want 2", len(fs.Workers))
	}
	if fs.Routed != 4 {
		t.Errorf("statsz routed %v, want 4", fs.Routed)
	}
	for _, key := range []string{"w1", "w2"} {
		if _, ok := fs.PerWork[key]; !ok {
			t.Errorf("statsz missing worker_statsz[%q]", key)
		}
	}

	resp, err := http.Get(rts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	expo := string(text)
	for _, want := range []string{
		"np_fleet_workers_registered 2",
		"np_fleet_workers_healthy 2",
		"np_fleet_routed_requests_total{",
		"np_fleet_retried_requests_total 0",
		"np_fleet_failed_requests_total 0",
		`worker="w1"`,
		`worker="w2"`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("merged /metricsz missing %q", want)
		}
	}
	// Worker families appear once, with per-worker series beneath.
	if n := strings.Count(expo, "# TYPE serve_uptime_seconds gauge"); n != 1 {
		t.Errorf("serve_uptime_seconds TYPE header appears %d times, want 1", n)
	}
}

// TestAgentLifecycle: Run registers, heartbeats, and re-registers after the
// router forgets the worker.
func TestAgentLifecycle(t *testing.T) {
	_, w1 := newWorker(t, "emotion")
	rt := NewRouter(Options{})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	a := &Agent{RouterURL: rts.URL, Key: "w1", SelfURL: w1.URL, Interval: 10 * time.Millisecond}
	done := make(chan struct{})
	go func() { defer close(done); a.Run(ctx) }()

	waitFor(t, "agent registered and heartbeating", func() bool {
		for _, wi := range rt.Workers() {
			if wi.Key == "w1" && wi.Healthy && wi.Beats > 0 {
				return true
			}
		}
		return false
	})

	// Router loses state (restart): the 404 heartbeat triggers re-register.
	rt.Deregister("w1")
	waitFor(t, "agent re-registered", func() bool {
		for _, wi := range rt.Workers() {
			if wi.Key == "w1" && wi.Healthy {
				return true
			}
		}
		return false
	})

	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("agent did not stop on ctx cancel")
	}
}

// TestCheckWorkersExpiresDeadWorker: a worker that stops answering health
// probes is marked unhealthy by the probe loop and skipped by routing.
func TestCheckWorkersExpiresDeadWorker(t *testing.T) {
	_, w1 := newWorker(t, "emotion")
	rt := NewRouter(Options{Client: &http.Client{Timeout: 200 * time.Millisecond}})
	if err := rt.Register("w1", w1.URL); err != nil {
		t.Fatal(err)
	}
	if ws := rt.Workers(); !ws[0].Healthy {
		t.Fatal("worker should be healthy after synchronous register probe")
	}
	if got := len(rt.candidates("emotion", 1)); got != 1 {
		t.Fatalf("candidates = %d, want 1", got)
	}
	w1.Close()
	rt.CheckWorkers()
	if ws := rt.Workers(); ws[0].Healthy {
		t.Fatal("worker should be unhealthy after failed probe")
	}
	if got := len(rt.candidates("emotion", 1)); got != 0 {
		t.Fatalf("candidates after death = %d, want 0", got)
	}
}

func mustGetJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
