package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/serve"
)

// newTracedWorker builds one worker with its fleet key stamped (so flight
// records carry it) and a sensitive slow lane (so every request shows up in
// the dashboard's slow table).
func newTracedWorker(t *testing.T, key string) (*serve.Server, *httptest.Server) {
	t.Helper()
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.NewServer()
	s.SetWorkerKey(key)
	s.ConfigureFlightRecorder(64, 8, 0.0001)
	if err := s.Register("emotion", lib, serve.ModelOptions{Pool: 1, QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Drain)
	return s, ts
}

// stitchedFleetTrace decodes the router's /tracez output for assertions.
type stitchedFleetTrace struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		PID  int            `json:"pid"`
		TS   int64          `json:"ts"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestFleetTraceEndToEnd is the PR's acceptance test: one request through the
// router with two registered workers yields a single stitched Chrome trace in
// which the router's route span and the executing worker's spans share one
// trace ID, and the executing worker's flight recorder holds a record whose
// trace ID matches the response header.
func TestFleetTraceEndToEnd(t *testing.T) {
	_, w1 := newTracedWorker(t, "w1")
	_, w2 := newTracedWorker(t, "w2")
	rt := NewRouter(Options{})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	registerWorker(t, rts.URL, "w1", w1.URL)
	registerWorker(t, rts.URL, "w2", w2.URL)

	body, _ := json.Marshal(serve.InferRequest{Model: "emotion", Seed: 7})
	resp, err := http.Post(rts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed infer status %d", resp.StatusCode)
	}
	execWorker := resp.Header.Get(WorkerHeader)
	if execWorker == "" {
		t.Fatalf("missing %s header", WorkerHeader)
	}
	tc, ok := obs.ParseTraceContext(resp.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("router response %s header %q invalid", obs.TraceHeader, resp.Header.Get(obs.TraceHeader))
	}

	// One stitched trace for the request: router + executing worker rows.
	var doc stitchedFleetTrace
	mustGetJSON(t, rts.URL+"/tracez?id="+tc.TraceID, &doc)
	procNames := map[int]string{}
	spanPIDs := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procNames[ev.PID] = ev.Args["name"].(string)
			continue
		}
		if ev.Ph != "X" {
			continue
		}
		if got := ev.Args[obs.TraceArg]; got != tc.TraceID {
			t.Errorf("span %q carries trace %v, want %v", ev.Name, got, tc.TraceID)
		}
		spanPIDs[ev.Name] = ev.PID
	}
	routePID, haveRoute := spanPIDs["route:emotion"]
	execPID, haveExec := spanPIDs["execute:emotion"]
	if !haveRoute || !haveExec {
		t.Fatalf("stitched trace missing route (%v) or execute (%v) span: %v", haveRoute, haveExec, spanPIDs)
	}
	if routePID == execPID {
		t.Errorf("router and worker spans share pid %d; stitching lost the process split", routePID)
	}
	if got := procNames[routePID]; !strings.HasPrefix(got, "router") {
		t.Errorf("route span process %q, want a router row", got)
	}
	if got := procNames[execPID]; !strings.HasPrefix(got, "worker "+execWorker) {
		t.Errorf("execute span process %q, want row of executing worker %q", got, execWorker)
	}
	// The worker also traced the request's time in queue.
	if _, ok := spanPIDs["queue-wait:emotion"]; !ok {
		t.Errorf("stitched trace missing the worker queue-wait span: %v", spanPIDs)
	}

	// The executing worker's flight recorder holds the request under the
	// response header's trace ID (checked through the fleet-merged endpoint).
	var merged FleetDebugRequests
	mustGetJSON(t, rts.URL+"/debugz/requests", &merged)
	if len(merged.Workers) != 2 {
		t.Fatalf("merged debugz scraped %v, want both workers", merged.Workers)
	}
	var rec *obs.FlightRecord
	for i := range merged.Recent {
		if merged.Recent[i].TraceID == tc.TraceID {
			rec = &merged.Recent[i]
		}
	}
	if rec == nil {
		t.Fatalf("no flight record for trace %s in merged dump %+v", tc.TraceID, merged.Recent)
	}
	if rec.Worker != execWorker || rec.Status != "ok" || rec.Model != "emotion" {
		t.Errorf("flight record %+v, want ok emotion on worker %s", rec, execWorker)
	}
}

// TestRouterSLOPenaltyReroutes: a worker burning its error budget for a model
// is demoted below in-budget candidates but kept as the fallback of last
// resort.
func TestRouterSLOPenaltyReroutes(t *testing.T) {
	rt := NewRouter(Options{})
	rt.now = func() time.Time { return time.Unix(1_700_000_000, 0) }
	for _, key := range []string{"w1", "w2", "w3"} {
		rt.workers[key] = &workerState{info: WorkerInfo{
			Key: key, URL: "http://" + key, Healthy: true, Models: []string{"emotion"},
		}}
	}
	base := rt.candidates("emotion", 7)
	first := base[0].Key

	// Burn the preferred worker's budget: it drops to the back of the line.
	rt.workers[first].info.SLOBurning = []string{"emotion"}
	reranked := rt.candidates("emotion", 7)
	if reranked[0].Key == first {
		t.Fatalf("burning worker %s still ranked first", first)
	}
	if reranked[len(reranked)-1].Key != first {
		t.Errorf("burning worker %s not demoted to last: %v", first, reranked)
	}
	// A burn on an unrelated model changes nothing.
	rt.workers[first].info.SLOBurning = []string{"other"}
	if again := rt.candidates("emotion", 7); again[0].Key != first {
		t.Errorf("burn on unrelated model demoted %s: %v", first, again)
	}
	// All burning: original rendezvous order holds (everyone is equally bad).
	for _, key := range []string{"w1", "w2", "w3"} {
		rt.workers[key].info.SLOBurning = []string{"emotion"}
	}
	allBurning := rt.candidates("emotion", 7)
	for i := range base {
		if allBurning[i].Key != base[i].Key {
			t.Fatalf("all-burning order %v != rendezvous order %v", allBurning, base)
		}
	}
}

// TestBurningModelsResolvesAliases: an unhealthy SLO on an endpoint name
// penalizes the public aliases routing points at.
func TestBurningModelsResolvesAliases(t *testing.T) {
	h := serve.HealthResponse{
		Aliases: map[string]string{"emotion": "emotion@v2", "other": "other@v1"},
		SLO: []obs.SLOStatus{
			{Model: "emotion@v2", Healthy: false},
			{Model: "other@v1", Healthy: true},
		},
	}
	got := burningModels(h)
	want := []string{"emotion", "emotion@v2"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("burningModels = %v, want %v", got, want)
	}
	if burningModels(serve.HealthResponse{}) != nil {
		t.Error("no SLO state must mean no burning models")
	}
}

// TestDashboardRendersFleet: /dashboardz returns self-contained HTML carrying
// worker rows, model stats, SLO budget bars, and slow-request trace links.
func TestDashboardRendersFleet(t *testing.T) {
	srv, w1 := newTracedWorker(t, "w1")
	srv.SetSLO("emotion", obs.SLO{ObjectiveQuantile: 0.5, ThresholdMs: 60_000})
	rt := NewRouter(Options{})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	registerWorker(t, rts.URL, "w1", w1.URL)

	resp, err := http.Post(rts.URL+"/v1/infer", "application/json",
		bytes.NewReader([]byte(`{"model":"emotion","seed":3}`)))
	if err != nil {
		t.Fatal(err)
	}
	tc, _ := obs.ParseTraceContext(resp.Header.Get(obs.TraceHeader))
	resp.Body.Close()
	rt.CheckWorkers() // refresh the probe so the SLO state reaches the router

	dresp, err := http.Get(rts.URL + "/dashboardz")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(dresp.Body)
	page := buf.String()
	if ct := dresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q, want text/html", ct)
	}
	for _, want := range []string{
		"worker w1",                // roster section
		"<td>emotion</td>",         // model stats row
		"p50",                      // renamed latency column present
		"class=\"bar\"",            // SLO budget bar
		"/tracez?id=" + tc.TraceID, // slow request links into the stitched trace
	} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(page, "DOWN") {
		t.Error("healthy worker rendered as DOWN")
	}
}
