package fleet

import (
	"fmt"
	"html/template"
	"net/http"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// The /dashboardz surface: one server-rendered HTML page assembled from the
// same sources the machine-readable endpoints expose — the fleet roster,
// each worker's /statsz and /debugz/cache scrape, the SLO state captured by
// the health probes, and the merged flight-recorder slow lane. No scripts, no
// external assets: curl it, open it in a browser, or archive it as a CI
// artifact and it still renders.

// dashModel is one (worker, model) serving row.
type dashModel struct {
	Model     string
	Version   string
	Completed uint64
	Failed    uint64
	Rejected  uint64
	Expired   uint64
	QPS       float64
	P50Ms     float64
	P95Ms     float64
	P99Ms     float64
}

// dashSLO is one SLO budget bar.
type dashSLO struct {
	Model         string
	BurnRate      float64
	BudgetPct     float64 // BudgetRemaining * 100, for the bar width
	Healthy       bool
	Requests      uint64
	ThresholdMs   float64
	QuantileLabel string
}

// dashCache is one worker's artifact-cache line.
type dashCache struct {
	HitRatePct float64
	Hits       uint64
	Misses     uint64
	Builds     uint64
	MemEntries int
}

// dashWorker is one worker's dashboard section.
type dashWorker struct {
	Info    WorkerInfo
	Models  []dashModel
	SLO     []dashSLO
	Cache   *dashCache
	ScrapeE string
}

// dashSlow is one slow-request row linking into the stitched trace view.
type dashSlow struct {
	TraceID string
	Model   string
	Worker  string
	Status  string
	TotalMs float64
	QueueMs float64
	ExecMs  float64
}

// dashData is everything the template renders.
type dashData struct {
	Generated  string
	UptimeMin  float64
	Registered int
	Healthy    int
	Routed     float64
	Retried    float64
	Failed     float64
	Workers    []dashWorker
	Slow       []dashSlow
}

// dashboardData assembles the page model from the roster and live scrapes.
func (rt *Router) dashboardData() dashData {
	d := dashData{
		Generated: rt.now().UTC().Format(time.RFC3339),
		UptimeMin: rt.now().Sub(rt.start).Minutes(),
		Routed:    rt.sumRouted(),
		Retried:   rt.retriedC.Value(),
		Failed:    rt.failedC.Value(),
	}
	for _, wi := range rt.Workers() {
		d.Registered++
		if wi.Healthy && !wi.Draining {
			d.Healthy++
		}
		dw := dashWorker{Info: wi}
		if wi.Healthy {
			rt.fillWorker(&dw)
		}
		d.Workers = append(d.Workers, dw)
	}
	// Fleet-wide slow lane, worst first, capped for the page.
	for _, wi := range d.Workers {
		if !wi.Info.Healthy {
			continue
		}
		var dr serve.DebugRequestsResponse
		if err := rt.getJSON(wi.Info.URL+"/debugz/requests", &dr); err != nil {
			rt.scrapeErrC.Inc()
			continue
		}
		for _, rec := range dr.Slow {
			d.Slow = append(d.Slow, dashSlow{
				TraceID: rec.TraceID, Model: rec.Model, Worker: wi.Info.Key,
				Status: rec.Status, TotalMs: rec.TotalMs,
				QueueMs: rec.QueueMs, ExecMs: rec.ExecMs,
			})
		}
	}
	sort.Slice(d.Slow, func(i, j int) bool { return d.Slow[i].TotalMs > d.Slow[j].TotalMs })
	if len(d.Slow) > 10 {
		d.Slow = d.Slow[:10]
	}
	return d
}

// fillWorker scrapes one healthy worker's stats, SLO state, and cache
// counters into its dashboard section. Scrape failures degrade to an error
// note — the dashboard must render even with half the fleet unreachable.
func (rt *Router) fillWorker(dw *dashWorker) {
	var st serve.StatsResponse
	if err := rt.getJSON(dw.Info.URL+"/statsz", &st); err != nil {
		rt.scrapeErrC.Inc()
		dw.ScrapeE = err.Error()
		return
	}
	uptimeSec := st.UptimeMs / 1000
	for _, m := range st.Models {
		row := dashModel{
			Model: m.Model, Version: m.Version,
			Completed: m.Completed, Failed: m.Failed,
			Rejected: m.Rejected, Expired: m.Expired,
			P50Ms: m.Latency.P50Ms, P95Ms: m.Latency.P95Ms, P99Ms: m.Latency.P99Ms,
		}
		if uptimeSec > 0 {
			row.QPS = float64(m.Completed) / uptimeSec
		}
		dw.Models = append(dw.Models, row)
	}

	rt.mu.RLock()
	var slo []obs.SLOStatus
	if ws, ok := rt.workers[dw.Info.Key]; ok {
		slo = append(slo, ws.slo...)
	}
	rt.mu.RUnlock()
	for _, s := range slo {
		dw.SLO = append(dw.SLO, dashSLO{
			Model:         s.Model,
			BurnRate:      s.BurnRate,
			BudgetPct:     s.BudgetRemaining * 100,
			Healthy:       s.Healthy,
			Requests:      s.Requests,
			ThresholdMs:   s.ThresholdMs,
			QuantileLabel: fmt.Sprintf("p%g", s.ObjectiveQuantile*100),
		})
	}

	// /debugz/cache is mounted by npserve; workers without it (tests, bare
	// serve.Server) just omit the cache line.
	var cs struct {
		Hits       uint64  `json:"hits"`
		Misses     uint64  `json:"misses"`
		Builds     uint64  `json:"builds"`
		MemEntries int     `json:"mem_entries"`
		HitRate    float64 `json:"hit_rate"`
	}
	if err := rt.getJSON(dw.Info.URL+"/debugz/cache", &cs); err == nil {
		dw.Cache = &dashCache{
			HitRatePct: cs.HitRate * 100,
			Hits:       cs.Hits, Misses: cs.Misses,
			Builds: cs.Builds, MemEntries: cs.MemEntries,
		}
	}
}

var dashTemplate = template.Must(template.New("dashboardz").Parse(`<!doctype html>
<html><head><meta charset="utf-8"><title>npfleet dashboard</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; color: #1a2330; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin: .4rem 0 1rem; }
th, td { border: 1px solid #cfd6e0; padding: .25rem .6rem; text-align: right; }
th { background: #eef2f7; } td:first-child, th:first-child { text-align: left; }
.ok { color: #0a7a33; } .bad { color: #b3261e; font-weight: 600; }
.meta { color: #5b6777; font-size: .85rem; }
.bar { display: inline-block; width: 160px; height: 10px; background: #f3d6d4; border-radius: 5px; vertical-align: middle; }
.bar i { display: block; height: 100%; background: #2e9e5b; border-radius: 5px; }
a { color: #1a56b0; text-decoration: none; } a:hover { text-decoration: underline; }
</style></head><body>
<h1>npfleet dashboard</h1>
<p class="meta">generated {{.Generated}} · router up {{printf "%.1f" .UptimeMin}} min ·
{{.Healthy}}/{{.Registered}} workers healthy ·
routed {{printf "%.0f" .Routed}} · retried {{printf "%.0f" .Retried}} · failed {{printf "%.0f" .Failed}}</p>

{{range .Workers}}
<h2>worker {{.Info.Key}} <span class="meta">{{.Info.URL}}</span>
{{if not .Info.Healthy}}<span class="bad">DOWN</span>{{else if .Info.Draining}}<span class="bad">draining</span>{{else}}<span class="ok">healthy</span>{{end}}</h2>
{{if .ScrapeE}}<p class="bad">stats scrape failed: {{.ScrapeE}}</p>{{end}}
{{if .Models}}
<table>
<tr><th>model</th><th>version</th><th>qps</th><th>completed</th><th>failed</th><th>rejected</th><th>expired</th><th>p50 ms</th><th>p95 ms</th><th>p99 ms</th></tr>
{{range .Models}}
<tr><td>{{.Model}}</td><td>{{.Version}}</td><td>{{printf "%.2f" .QPS}}</td><td>{{.Completed}}</td>
<td{{if .Failed}} class="bad"{{end}}>{{.Failed}}</td><td>{{.Rejected}}</td><td>{{.Expired}}</td>
<td>{{printf "%.2f" .P50Ms}}</td><td>{{printf "%.2f" .P95Ms}}</td><td>{{printf "%.2f" .P99Ms}}</td></tr>
{{end}}
</table>
{{end}}
{{if .SLO}}
<table>
<tr><th>SLO</th><th>objective</th><th>window reqs</th><th>burn rate</th><th>budget left</th><th></th></tr>
{{range .SLO}}
<tr><td>{{.Model}}</td><td>{{.QuantileLabel}} &le; {{printf "%.0f" .ThresholdMs}} ms</td>
<td>{{.Requests}}</td>
<td{{if not .Healthy}} class="bad"{{end}}>{{printf "%.2f" .BurnRate}}</td>
<td>{{printf "%.0f" .BudgetPct}}%</td>
<td><span class="bar"><i style="width: {{printf "%.0f" .BudgetPct}}%"></i></span></td></tr>
{{end}}
</table>
{{end}}
{{if .Cache}}<p class="meta">artifact cache: {{printf "%.0f" .Cache.HitRatePct}}% hit rate
({{.Cache.Hits}} hits / {{.Cache.Misses}} misses, {{.Cache.Builds}} builds, {{.Cache.MemEntries}} resident)</p>{{end}}
{{end}}

<h2>slowest requests</h2>
{{if .Slow}}
<table>
<tr><th>trace</th><th>model</th><th>worker</th><th>status</th><th>total ms</th><th>queue ms</th><th>exec ms</th></tr>
{{range .Slow}}
<tr><td>{{if .TraceID}}<a href="/tracez?id={{.TraceID}}">{{.TraceID}}</a>{{else}}—{{end}}</td>
<td>{{.Model}}</td><td>{{.Worker}}</td>
<td{{if ne .Status "ok"}} class="bad"{{end}}>{{.Status}}</td>
<td>{{printf "%.2f" .TotalMs}}</td><td>{{printf "%.2f" .QueueMs}}</td><td>{{printf "%.2f" .ExecMs}}</td></tr>
{{end}}
</table>
{{else}}<p class="meta">no requests past the slow threshold yet.</p>{{end}}
</body></html>
`))

// handleDashboard renders the fleet health dashboard.
func (rt *Router) handleDashboard(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashTemplate.Execute(w, rt.dashboardData()); err != nil {
		// The header is already out; all we can do is log-by-metric.
		rt.scrapeErrC.Inc()
	}
}
