package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/runtime"
	"repro/internal/serve"
)

// TestFleetSmoke is the `make fleet-smoke` scenario: a router fronting two
// in-process workers that share an artifact store, zoo-wide routed
// inference, a hot-load of a second model version, and a worker drain with
// verified failover. Set FLEET_SMOKE_OUT to dump the final fleet /statsz
// document (CI uploads it as an artifact). Gated behind FLEET_SMOKE=1 so the
// ordinary test run stays fast; `make fleet-smoke` sets it.
func TestFleetSmoke(t *testing.T) {
	if os.Getenv("FLEET_SMOKE") == "" {
		t.Skip("set FLEET_SMOKE=1 (or run `make fleet-smoke`) to run the fleet smoke scenario")
	}
	opts := runtime.BuildOptions{OptLevel: 3}
	cacheDir := t.TempDir()
	w1 := newFleetWorker(t, "w1", cacheDir)
	w2 := newFleetWorker(t, "w2", cacheDir)

	// Deploy the whole zoo on both workers; w1 compiles, w2 must ride the
	// shared artifact store.
	names := models.Names()
	for _, name := range names {
		spec, err := models.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		m, err := spec.Build(models.SizeLite)
		if err != nil {
			t.Fatalf("%s: build module: %v", name, err)
		}
		key, err := registry.Key(m, opts, nil)
		if err != nil {
			t.Fatal(err)
		}
		build := func() (*runtime.Lib, error) { return runtime.Build(m, opts) }
		w1.deploy(t, name, "v1", key, build)
		w2.deploy(t, name, "v1", key, build)
	}
	if st := w2.cache.Stats(); st.Builds != 0 || st.DiskHits != uint64(len(names)) {
		t.Fatalf("w2 cache stats %+v: want 0 builds, %d disk hits", st, len(names))
	}
	t.Logf("deployed %d zoo models; w1 built %d, w2 disk-hit %d",
		len(names), w1.cache.Stats().Builds, w2.cache.Stats().DiskHits)

	rt := NewRouter(Options{
		HeartbeatTimeout: time.Hour,
		HealthInterval:   time.Hour,
		Client:           &http.Client{Timeout: 120 * time.Second},
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	for _, w := range []*fleetWorker{w1, w2} {
		if err := rt.Register(w.key, w.ts.URL); err != nil {
			t.Fatal(err)
		}
	}

	infer := func(model string, seed uint64) (*http.Response, serve.InferResponse, error) {
		body, _ := json.Marshal(serve.InferRequest{Model: model, Seed: seed})
		resp, err := http.Post(rts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, serve.InferResponse{}, err
		}
		defer resp.Body.Close()
		var ir serve.InferResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
				return resp, ir, err
			}
		}
		return resp, ir, nil
	}

	// Zoo-wide routed inference. Keep one trace ID for the stitched-trace
	// artifact dump at the end.
	var lastTrace string
	for _, name := range names {
		resp, ir, err := infer(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", name, resp.StatusCode)
		}
		if len(ir.Outputs) == 0 || ir.Version != "v1" {
			t.Fatalf("%s: outputs=%d version=%q", name, len(ir.Outputs), ir.Version)
		}
		if tc, ok := obs.ParseTraceContext(resp.Header.Get(obs.TraceHeader)); ok {
			lastTrace = tc.TraceID
		}
	}
	if lastTrace == "" {
		t.Fatal("routed inferences carried no trace context")
	}

	// Hot-load a second version of one model fleet-wide; routed responses
	// must flip to v2, then rollback must restore v1.
	m2, err := models.BuildEmotion(models.SizeFull)
	if err != nil {
		t.Fatal(err)
	}
	key2, err := registry.Key(m2, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	build2 := func() (*runtime.Lib, error) { return runtime.Build(m2, opts) }
	w1.deploy(t, "emotion", "v2", key2, build2)
	w2.deploy(t, "emotion", "v2", key2, build2)
	if _, ir, err := infer("emotion", 2); err != nil || ir.Version != "v2" {
		t.Fatalf("after hot-load: version %q err %v, want v2", ir.Version, err)
	}
	for _, w := range []*fleetWorker{w1, w2} {
		if _, err := w.reg.Rollback("emotion"); err != nil {
			t.Fatal(err)
		}
	}
	if _, ir, err := infer("emotion", 2); err != nil || ir.Version != "v1" {
		t.Fatalf("after rollback: version %q err %v, want v1", ir.Version, err)
	}

	// Drain w1: the probe pass sees draining and routing fails over; every
	// zoo model must still answer, now from w2.
	w1.srv.Drain()
	rt.CheckWorkers()
	for _, name := range names {
		resp, _, err := infer(name, 3)
		if err != nil {
			t.Fatalf("%s after drain: %v", name, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s after drain: status %d", name, resp.StatusCode)
		}
		if wk := resp.Header.Get(WorkerHeader); wk != "w2" {
			t.Fatalf("%s after drain routed to %q, want w2", name, wk)
		}
	}

	// Dump CI artifacts: the fleet /statsz document, a /dashboardz snapshot,
	// and the stitched Chrome trace of one routed request.
	dump := func(env, path string) {
		out := os.Getenv(env)
		if out == "" {
			return
		}
		resp, err := http.Get(rts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		doc, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, doc, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("fleet %s dumped to %s (%d bytes)", path, out, len(doc))
	}
	dump("FLEET_SMOKE_OUT", "/statsz")
	dump("FLEET_SMOKE_DASH", "/dashboardz")
	dump("FLEET_SMOKE_TRACE", "/tracez?id="+lastTrace)
	fmt.Fprintf(os.Stderr, "fleet-smoke: %d models routed, hot-load+rollback ok, drain failover ok\n", len(names))
}
