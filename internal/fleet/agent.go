package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// Agent is the worker side of the tracker protocol: it announces one npserve
// process to the router and keeps its registration alive with heartbeats,
// re-registering automatically when the router restarts and forgets it.
type Agent struct {
	// RouterURL is the router's base URL.
	RouterURL string
	// Key is this worker's device key; it must be unique fleet-wide.
	Key string
	// SelfURL is this worker's base URL as reachable from the router.
	SelfURL string
	// Interval between heartbeats (default 2s).
	Interval time.Duration
	// Client performs the calls (default: 5s-timeout http.Client).
	Client *http.Client
}

func (a *Agent) client() *http.Client {
	if a.Client != nil {
		return a.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

func (a *Agent) post(ctx context.Context, path string, body any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.RouterURL+path, bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client().Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Register announces the worker to the router once. The router probes the
// worker synchronously, so success means the worker is routable.
func (a *Agent) Register(ctx context.Context) error {
	code, err := a.post(ctx, "/fleet/register", RegisterRequest{Key: a.Key, URL: a.SelfURL})
	if err != nil {
		return fmt.Errorf("fleet: register %s with %s: %w", a.Key, a.RouterURL, err)
	}
	if code != http.StatusOK {
		return fmt.Errorf("fleet: register %s with %s: status %d", a.Key, a.RouterURL, code)
	}
	return nil
}

// Deregister removes the worker from the router (graceful shutdown).
func (a *Agent) Deregister(ctx context.Context) error {
	if _, err := a.post(ctx, "/fleet/deregister", RegisterRequest{Key: a.Key}); err != nil {
		return fmt.Errorf("fleet: deregister %s: %w", a.Key, err)
	}
	return nil
}

// Run registers (retrying with the heartbeat interval as backoff until ctx
// is done) and then heartbeats forever; a heartbeat rejected with 404 means
// the router lost state, so the agent re-registers. Returns ctx.Err().
func (a *Agent) Run(ctx context.Context) error {
	interval := a.Interval
	if interval <= 0 {
		interval = 2 * time.Second
	}
	for a.Register(ctx) != nil {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(interval):
		}
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			code, err := a.post(ctx, "/fleet/heartbeat", RegisterRequest{Key: a.Key})
			if err == nil && code == http.StatusNotFound {
				_ = a.Register(ctx) // router restarted; re-announce
			}
		}
	}
}
