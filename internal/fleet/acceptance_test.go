package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/registry"
	"repro/internal/runtime"
	"repro/internal/serve"
)

// fleetWorker is one in-process npserve worker: its own server, registry,
// and artifact cache (separate Cache instances over one shared directory —
// the shared-artifact-store deployment the cache is for).
type fleetWorker struct {
	key   string
	cache *registry.Cache
	srv   *serve.Server
	reg   *registry.Registry
	ts    *httptest.Server
}

func newFleetWorker(t *testing.T, key, cacheDir string) *fleetWorker {
	t.Helper()
	c, err := registry.NewCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer()
	srv.SetWorkerKey(key)
	c.EnableMetrics(srv.Metrics())
	w := &fleetWorker{key: key, cache: c, srv: srv, reg: registry.New(srv)}
	w.ts = httptest.NewServer(srv.Handler())
	t.Cleanup(w.ts.Close)
	return w
}

// deploy loads (model, version) through the worker's artifact cache and cuts
// the public alias over to it, returning whether the load avoided compiling.
func (w *fleetWorker) deploy(t *testing.T, model, version, cacheKey string, build func() (*runtime.Lib, error)) bool {
	t.Helper()
	lib, hit, err := w.cache.GetOrBuild(cacheKey, nil, build)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.reg.Deploy(model, version, lib, serve.ModelOptions{Pool: 2, QueueDepth: 64}, cacheKey); err != nil {
		t.Fatal(err)
	}
	return hit
}

// refOutputs collects the single-process reference: seed → response from a
// plain serve.Server over the same HTTP surface (so JSON float round-trips
// identically on both sides of the comparison).
func refOutputs(t *testing.T, url string, seeds []uint64) map[uint64]serve.InferResponse {
	t.Helper()
	out := make(map[uint64]serve.InferResponse, len(seeds))
	for _, seed := range seeds {
		body, _ := json.Marshal(serve.InferRequest{Model: "emotion", Seed: seed})
		resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ir serve.InferResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference seed %d: status %d", seed, resp.StatusCode)
		}
		out[seed] = ir
	}
	return out
}

func sameOutputs(a, b []serve.TensorJSON) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].DType != b[i].DType || len(a[i].Data) != len(b[i].Data) || len(a[i].Shape) != len(b[i].Shape) {
			return false
		}
		for j := range a[i].Shape {
			if a[i].Shape[j] != b[i].Shape[j] {
				return false
			}
		}
		for j := range a[i].Data {
			if a[i].Data[j] != b[i].Data[j] {
				return false
			}
		}
	}
	return true
}

// TestFleetAcceptance is the PR's acceptance gate, exercised under -race by
// `make check`: two workers behind the router serve concurrent clients with
// outputs bitwise-identical to a single-process serve.Server; the second
// worker's library load is an artifact-cache hit (zero compiles, pinned via
// cache metrics); hot-loading v2 and rolling back under load never yields a
// mixed-version response; and killing a worker mid-load loses no accepted
// requests.
func TestFleetAcceptance(t *testing.T) {
	m1, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := models.BuildEmotion(models.SizeFull)
	if err != nil {
		t.Fatal(err)
	}
	opts := runtime.BuildOptions{OptLevel: 3}
	key1, err := registry.Key(m1, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	key2, err := registry.Key(m2, opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	buildV1 := func() (*runtime.Lib, error) { return runtime.Build(m1, opts) }
	buildV2 := func() (*runtime.Lib, error) { return runtime.Build(m2, opts) }

	cacheDir := t.TempDir()
	w1 := newFleetWorker(t, "w1", cacheDir)
	w2 := newFleetWorker(t, "w2", cacheDir)

	// --- artifact cache: first worker compiles, second loads the artifact.
	if hit := w1.deploy(t, "emotion", "v1", key1, buildV1); hit {
		t.Fatal("w1 deploy should be the cache miss that compiles")
	}
	if hit := w2.deploy(t, "emotion", "v1", key1, buildV1); !hit {
		t.Fatal("w2 deploy should hit the shared artifact store")
	}
	if st := w2.cache.Stats(); st.Builds != 0 || st.DiskHits != 1 {
		t.Fatalf("w2 cache stats %+v: want 0 builds, 1 disk hit", st)
	}

	// The race detector makes SizeFull inferences slow enough to trip a short
	// proxy timeout, which would read as dead workers; the acceptance router
	// gets a generous client so only real transport failures count.
	rt := NewRouter(Options{
		HeartbeatTimeout: 1 << 40,
		HealthInterval:   1 << 40,
		Client:           &http.Client{Timeout: 120 * time.Second},
	})
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	if err := rt.Register("w1", w1.ts.URL); err != nil {
		t.Fatal(err)
	}
	if err := rt.Register("w2", w2.ts.URL); err != nil {
		t.Fatal(err)
	}

	// --- single-process references for both model versions.
	refSrv := serve.NewServer()
	libRef1, err := buildV1()
	if err != nil {
		t.Fatal(err)
	}
	libRef2, err := buildV2()
	if err != nil {
		t.Fatal(err)
	}
	if err := refSrv.Register("emotion", libRef1, serve.ModelOptions{Pool: 1, QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	if err := refSrv.Register("emotion-v2", libRef2, serve.ModelOptions{Pool: 1, QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	ref1 := refOutputs(t, refTS.URL, seeds)
	ref2 := map[uint64]serve.InferResponse{}
	for _, seed := range seeds {
		body, _ := json.Marshal(serve.InferRequest{Model: "emotion-v2", Seed: seed})
		resp, err := http.Post(refTS.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ir serve.InferResponse
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		ref2[seed] = ir
	}

	// --- concurrent clients through the router: every output bitwise equal
	// to the single-process reference.
	var wg sync.WaitGroup
	errCh := make(chan error, len(seeds)*3)
	for c := 0; c < 3; c++ {
		for _, seed := range seeds {
			wg.Add(1)
			go func(seed uint64) {
				defer wg.Done()
				body, _ := json.Marshal(serve.InferRequest{Model: "emotion", Seed: seed})
				resp, err := http.Post(rts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("seed %d: status %d", seed, resp.StatusCode)
					return
				}
				var ir serve.InferResponse
				if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
					errCh <- err
					return
				}
				if !sameOutputs(ir.Outputs, ref1[seed].Outputs) {
					errCh <- fmt.Errorf("seed %d via %s: outputs differ from single-process reference", seed, resp.Header.Get(WorkerHeader))
				}
			}(seed)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// --- hot-load v2 and roll back while clients hammer the router: every
	// response must be internally consistent — a v1 label with v1 outputs or
	// a v2 label with v2 outputs, never a mix — and nothing may fail.
	stop := make(chan struct{})
	loadErr := make(chan error, 64)
	var loadWG sync.WaitGroup
	for c := 0; c < 4; c++ {
		loadWG.Add(1)
		go func(c int) {
			defer loadWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				seed := seeds[(c+i)%len(seeds)]
				body, _ := json.Marshal(serve.InferRequest{Model: "emotion", Seed: seed})
				resp, err := http.Post(rts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					loadErr <- err
					return
				}
				var ir serve.InferResponse
				decErr := json.NewDecoder(resp.Body).Decode(&ir)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					loadErr <- fmt.Errorf("mid-cutover seed %d: status %d", seed, resp.StatusCode)
					return
				}
				if decErr != nil {
					loadErr <- decErr
					return
				}
				switch ir.Version {
				case "v1":
					if !sameOutputs(ir.Outputs, ref1[seed].Outputs) {
						loadErr <- fmt.Errorf("seed %d: v1-labelled response with non-v1 outputs (mixed version)", seed)
						return
					}
				case "v2":
					if !sameOutputs(ir.Outputs, ref2[seed].Outputs) {
						loadErr <- fmt.Errorf("seed %d: v2-labelled response with non-v2 outputs (mixed version)", seed)
						return
					}
				default:
					loadErr <- fmt.Errorf("seed %d: unexpected version %q", seed, ir.Version)
					return
				}
			}
		}(c)
	}

	if hit := w1.deploy(t, "emotion", "v2", key2, buildV2); hit {
		t.Error("w1 v2 deploy should compile (new key)")
	}
	if hit := w2.deploy(t, "emotion", "v2", key2, buildV2); !hit {
		t.Error("w2 v2 deploy should hit the shared artifact store")
	}
	for _, w := range []*fleetWorker{w1, w2} {
		if restored, err := w.reg.Rollback("emotion"); err != nil || restored != "v1" {
			t.Fatalf("%s rollback: restored=%q err=%v", w.key, restored, err)
		}
	}
	close(stop)
	loadWG.Wait()
	close(loadErr)
	for err := range loadErr {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// --- kill w1 mid-load: the router retries its shards on w2; every
	// request accepted by the fleet still answers, bitwise-correct.
	stop2 := make(chan struct{})
	kill := make(chan struct{})
	killErr := make(chan error, 64)
	var killWG sync.WaitGroup
	var once sync.Once
	for c := 0; c < 4; c++ {
		killWG.Add(1)
		go func(c int) {
			defer killWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop2:
					return
				default:
				}
				if c == 0 && i == 3 {
					once.Do(func() { close(kill) })
				}
				seed := seeds[(c+i)%len(seeds)]
				body, _ := json.Marshal(serve.InferRequest{Model: "emotion", Seed: seed})
				resp, err := http.Post(rts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					killErr <- err
					return
				}
				var ir serve.InferResponse
				decErr := json.NewDecoder(resp.Body).Decode(&ir)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					killErr <- fmt.Errorf("mid-kill seed %d: status %d", seed, resp.StatusCode)
					return
				}
				if decErr != nil {
					killErr <- decErr
					return
				}
				if !sameOutputs(ir.Outputs, ref1[seed].Outputs) {
					killErr <- fmt.Errorf("mid-kill seed %d: outputs differ from reference", seed)
					return
				}
			}
		}(c)
	}
	<-kill
	w1.ts.Close() // waits for in-flight handlers: accepted requests finish
	// Let each client complete a few post-kill rounds, then stop.
	waitFor(t, "post-kill traffic settling on w2", func() bool {
		for _, wi := range rt.Workers() {
			if wi.Key == "w1" && !wi.Healthy {
				return true
			}
		}
		return false
	})
	close(stop2)
	killWG.Wait()
	close(killErr)
	for err := range killErr {
		t.Error(err)
	}

	// --- fleet metrics: the merged exposition carries the cache counters of
	// the surviving worker (np_fleet_artifact_cache_*) and the router's
	// np_fleet_* family.
	resp, err := http.Get(rts.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	expo := string(text)
	for _, want := range []string{
		"np_fleet_workers_registered 2",
		"np_fleet_workers_healthy 1",
		"np_fleet_routed_requests_total{",
		`np_fleet_artifact_cache_builds_total{worker="w2"} 0`,
		`np_fleet_artifact_cache_requests_total{worker="w2",outcome="hit_disk"} 2`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("fleet /metricsz missing %q", want)
		}
	}
}
