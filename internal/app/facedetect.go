// Package app implements the application showcase of the paper's §4 and
// Figure 1: each video frame passes an object detector (the TFLite
// MobileNet-SSD) and a face detector; where their boxes overlap, the
// PyTorch anti-spoofing model separates real faces from presentation
// attacks, and real faces go through the Keras emotion classifier
// (Listing 5).
package app

import (
	"repro/internal/tensor"
	"repro/internal/video"
)

// FaceDetector is the classical face detector stage (the cv2 Haar-cascade
// stand-in): it thresholds the bright skin-toned blobs the synthetic scene
// renders for faces, extracts connected components on a downsampled grid,
// and returns their bounding boxes.
type FaceDetector struct {
	// Threshold on the red channel selecting face-like pixels.
	Threshold float64
	// Downsample factor for the component grid.
	Stride int
	// MinArea (in full-resolution pixels) below which components are noise.
	MinArea int
}

// NewFaceDetector returns a detector tuned for the synthetic scenes.
func NewFaceDetector() *FaceDetector {
	return &FaceDetector{Threshold: 0.7, Stride: 4, MinArea: 64}
}

// Detect returns face bounding boxes in frame pixel coordinates.
func (d *FaceDetector) Detect(img *tensor.Tensor) []video.Rect {
	h, w := img.Shape[1], img.Shape[2]
	gw := (w + d.Stride - 1) / d.Stride
	gh := (h + d.Stride - 1) / d.Stride
	mask := make([]bool, gw*gh)
	for gy := 0; gy < gh; gy++ {
		for gx := 0; gx < gw; gx++ {
			y := gy * d.Stride
			x := gx * d.Stride
			if y >= h || x >= w {
				continue
			}
			// Face pixels are bright with R >= G >= B (the renderer's skin
			// tone); objects are green-dominant.
			r := img.At(0, y, x, 0)
			g := img.At(0, y, x, 1)
			b := img.At(0, y, x, 2)
			mask[gy*gw+gx] = r > d.Threshold && r >= g && g >= b
		}
	}
	// Connected components via iterative flood fill (4-connectivity).
	comp := make([]int, gw*gh)
	for i := range comp {
		comp[i] = -1
	}
	var boxes []video.Rect
	var stack []int
	next := 0
	for start := range mask {
		if !mask[start] || comp[start] >= 0 {
			continue
		}
		id := next
		next++
		minX, minY, maxX, maxY := gw, gh, -1, -1
		stack = append(stack[:0], start)
		comp[start] = id
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			cy, cx := cur/gw, cur%gw
			if cx < minX {
				minX = cx
			}
			if cx > maxX {
				maxX = cx
			}
			if cy < minY {
				minY = cy
			}
			if cy > maxY {
				maxY = cy
			}
			for _, dxy := range [4][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
				ny, nx := cy+dxy[0], cx+dxy[1]
				if ny < 0 || ny >= gh || nx < 0 || nx >= gw {
					continue
				}
				ni := ny*gw + nx
				if mask[ni] && comp[ni] < 0 {
					comp[ni] = id
					stack = append(stack, ni)
				}
			}
		}
		box := video.Rect{
			X: minX * d.Stride,
			Y: minY * d.Stride,
			W: (maxX - minX + 1) * d.Stride,
			H: (maxY - minY + 1) * d.Stride,
		}
		if box.Area() >= d.MinArea {
			boxes = append(boxes, box.Clamp(w, h))
		}
	}
	return boxes
}
