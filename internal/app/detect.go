package app

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/tensor"
	"repro/internal/video"
)

// Detection is one decoded object-detector box.
type Detection struct {
	Box   video.Rect
	Score float64
	Class int
}

// DecodeSSD converts the SSD head outputs (dequantized boxes [1,N,4] and
// class scores [1,N,C]) into frame-space detections. Rows are laid out as
// gridA²·anchors followed by gridB²·anchors with gridA = 2·gridB (the two
// feature-map scales of the model); box regressions are decoded relative to
// their anchor cell.
func DecodeSSD(boxes, scores *tensor.Tensor, frameW, frameH int, threshold float64, topK int) ([]Detection, error) {
	if len(boxes.Shape) != 3 || boxes.Shape[2] != 4 {
		return nil, fmt.Errorf("app: SSD boxes have shape %s, want (1,N,4)", boxes.Shape)
	}
	n := boxes.Shape[1]
	classes := scores.Shape[2]
	// N = anchors·(gridA² + gridB²) with gridA = 2·gridB → N = 15·gridB².
	gridB := int(math.Round(math.Sqrt(float64(n) / 15)))
	if gridB < 1 || 15*gridB*gridB != n {
		return nil, fmt.Errorf("app: cannot derive SSD grids from %d rows", n)
	}
	gridA := 2 * gridB
	anchors := 3

	var dets []Detection
	for i := 0; i < n; i++ {
		// Best non-background class.
		best, bestScore := 0, 0.0
		for c := 1; c < classes; c++ {
			if s := scores.At(0, i, c); s > bestScore {
				best, bestScore = c, s
			}
		}
		if bestScore < threshold {
			continue
		}
		grid, row := gridA, i
		if i >= gridA*gridA*anchors {
			grid = gridB
			row = i - gridA*gridA*anchors
		}
		cell := row / anchors
		cy := cell / grid
		cx := cell % grid
		// Box regression relative to anchor cell center.
		dx := boxes.At(0, i, 0)
		dy := boxes.At(0, i, 1)
		dw := boxes.At(0, i, 2)
		dh := boxes.At(0, i, 3)
		centerX := (float64(cx)+0.5)/float64(grid) + 0.1*clampF(dx, -2, 2)
		centerY := (float64(cy)+0.5)/float64(grid) + 0.1*clampF(dy, -2, 2)
		base := 1.8 / float64(grid)
		bw := base * math.Exp(clampF(dw, -1, 1))
		bh := base * math.Exp(clampF(dh, -1, 1))
		rect := video.Rect{
			X: int((centerX - bw/2) * float64(frameW)),
			Y: int((centerY - bh/2) * float64(frameH)),
			W: int(bw * float64(frameW)),
			H: int(bh * float64(frameH)),
		}.Clamp(frameW, frameH)
		if rect.Area() == 0 {
			continue
		}
		dets = append(dets, Detection{Box: rect, Score: bestScore, Class: best})
	}
	sort.Slice(dets, func(i, j int) bool { return dets[i].Score > dets[j].Score })
	if topK > 0 && len(dets) > topK {
		dets = dets[:topK]
	}
	return dets, nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
