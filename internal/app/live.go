package app

import (
	"fmt"

	"repro/internal/pipeline"
	"repro/internal/soc"
	"repro/internal/video"
)

// The live pipelined executor: the §5.2 prototype applied to the *actual*
// application rather than to averaged stage times. Three goroutine stages
// (detect → anti-spoof → emotion) process different frames concurrently;
// per-device mutexes enforce the exclusive-resource rule in wall-clock time
// while the shared virtual timeline accounts the simulated schedule with
// the same atomic multi-device reservation the static scheduler uses.

// DeviceLocks is the shared exclusive-device mutex set; it now lives in
// internal/pipeline so the serving scheduler can coordinate through the same
// mechanism.
type DeviceLocks = pipeline.DeviceLocks

// StageDevices assigns the exclusive device set of each pipeline stage —
// the Figure 5 assignment by default.
type StageDevices struct {
	Detect, Spoof, Emotion []soc.DeviceKind
}

// Figure5Devices is the paper's assignment: detection CPU-only,
// anti-spoofing CPU+APU, emotion APU-only.
func Figure5Devices() StageDevices {
	return StageDevices{
		Detect:  []soc.DeviceKind{soc.KindCPU},
		Spoof:   []soc.DeviceKind{soc.KindCPU, soc.KindAPU},
		Emotion: []soc.DeviceKind{soc.KindAPU},
	}
}

// LiveResult is the outcome of a pipelined run.
type LiveResult struct {
	Results []*FrameResult
	// Makespan is the simulated completion time of the last frame.
	Makespan soc.Seconds
	// SequentialTime is Σ of all stage costs (what unpipelined execution
	// would take).
	SequentialTime soc.Seconds
	Timeline       *soc.Timeline
}

// Speedup is the pipelining gain.
func (r *LiveResult) Speedup() float64 {
	if r.Makespan <= 0 {
		return 1
	}
	return float64(r.SequentialTime) / float64(r.Makespan)
}

// liveItem carries one frame through the stage channels.
type liveItem struct {
	idx        int
	frame      *video.Frame
	res        *FrameResult
	candidates []video.Rect
	ready      soc.Seconds // simulated completion of the previous stage
	err        error
}

// RunLive processes the frames through the three-stage pipeline. Frame
// results are identical to sequential ProcessFrame calls (same models, same
// inputs); only the schedule differs.
func (s *Showcase) RunLive(frames []*video.Frame, devs StageDevices) (*LiveResult, error) {
	tl := soc.NewTimeline()
	locks := &DeviceLocks{}
	c1 := make(chan *liveItem, len(frames))
	c2 := make(chan *liveItem, len(frames))
	done := make(chan *liveItem, len(frames))

	// Stage 1: detection.
	go func() {
		defer close(c2)
		for it := range c1 {
			if it.err == nil {
				locks.Lock(devs.Detect)
				res, cands, err := s.DetectStage(it.frame)
				if err == nil {
					it.res, it.candidates = res, cands
					it.ready = tl.ScheduleMulti(devs.Detect, fmt.Sprintf("d%d", it.idx),
						it.ready, res.Timing.Detect)
				}
				it.err = err
				locks.Unlock(devs.Detect)
			}
			c2 <- it
		}
	}()
	// Stage 2: anti-spoofing.
	go func() {
		defer close(done)
		for it := range c2 {
			if it.err == nil {
				locks.Lock(devs.Spoof)
				err := s.SpoofStage(it.frame, it.res, it.candidates)
				if err == nil {
					it.ready = tl.ScheduleMulti(devs.Spoof, fmt.Sprintf("s%d", it.idx),
						it.ready, it.res.Timing.AntiSpoof)
				}
				it.err = err
				locks.Unlock(devs.Spoof)
			}
			done <- it
		}
	}()

	for i, f := range frames {
		c1 <- &liveItem{idx: i, frame: f}
	}
	close(c1)

	// Stage 3 runs on the collector goroutine (emotion), preserving FIFO.
	out := &LiveResult{Timeline: tl}
	for it := range done {
		if it.err != nil {
			return nil, it.err
		}
		locks.Lock(devs.Emotion)
		err := s.EmotionStage(it.frame, it.res)
		if err == nil {
			it.ready = tl.ScheduleMulti(devs.Emotion, fmt.Sprintf("e%d", it.idx),
				it.ready, it.res.Timing.Emotion)
		}
		locks.Unlock(devs.Emotion)
		if err != nil {
			return nil, err
		}
		out.Results = append(out.Results, it.res)
		out.SequentialTime += it.res.Timing.Total()
	}
	out.Makespan = tl.Now()
	return out, nil
}
