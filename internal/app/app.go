package app

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/video"
)

// Config selects model sizes and per-model build options. Per the paper's
// §5.1 computation scheduling, each model can target a different device
// permutation (e.g. object detection on CPU-only for the pipeline prototype
// while anti-spoofing keeps CPU+APU).
type Config struct {
	Size models.Size
	// Per-model build options (UseNIR / NIRDevices select the target).
	Detection runtime.BuildOptions
	AntiSpoof runtime.BuildOptions
	Emotion   runtime.BuildOptions
	// Executor selects the execution strategy for all three graph modules
	// (the showcase/npc -executor flag); the zero value is ExecutorAuto.
	Executor runtime.ExecutorKind
	// ScoreThreshold for object detections.
	ScoreThreshold float64
}

// DefaultConfig runs all three models through the BYOC flow on CPU+APU at
// the lite preset.
func DefaultConfig() Config {
	byoc := runtime.BuildOptions{OptLevel: 3, UseNIR: true}
	return Config{
		Size:      models.SizeLite,
		Detection: byoc,
		AntiSpoof: byoc,
		Emotion:   byoc,
		// Synthetic weights produce uncalibrated logits near zero, so class
		// scores cluster around 0.5; the gate keeps above-median detections.
		ScoreThreshold: 0.5,
	}
}

// FaceResult is the verdict for one candidate face.
type FaceResult struct {
	Box        video.Rect
	SpoofScore float64
	Real       bool
	Emotion    string
	Confidence float64
}

// StageTiming is the simulated cost of each pipeline stage for one frame.
type StageTiming struct {
	Detect    soc.Seconds
	AntiSpoof soc.Seconds
	Emotion   soc.Seconds
}

// Total sums the stage costs (sequential execution).
func (t StageTiming) Total() soc.Seconds { return t.Detect + t.AntiSpoof + t.Emotion }

// FrameResult is the showcase output for one frame.
type FrameResult struct {
	Frame   int
	Objects []Detection
	Faces   []FaceResult
	Timing  StageTiming
}

// Showcase bundles the three compiled models plus the face detector —
// Listing 5's build_model_on_TVM output.
type Showcase struct {
	cfg      Config
	detGM    *runtime.GraphModule
	spoofGM  *runtime.GraphModule
	emoGM    *runtime.GraphModule
	faces    *FaceDetector
	detShape tensor.Shape
	detQuant *tensor.QuantParams
	spoofIn  tensor.Shape
	// Anti-spoofing calibration: synthetic weights are uncalibrated, so the
	// decision boundary is fitted at build time against reference live and
	// printed-photo patches (midpoint threshold + polarity).
	spoofThreshold float64
	spoofPolarity  float64
}

// New builds all three models (each through its own frontend) and compiles
// them with the configured options.
func New(cfg Config) (*Showcase, error) {
	detMod, err := models.BuildMobileNetSSDQuant(cfg.Size)
	if err != nil {
		return nil, fmt.Errorf("app: building object detector: %w", err)
	}
	spoofMod, err := models.BuildDeePixBiS(cfg.Size)
	if err != nil {
		return nil, fmt.Errorf("app: building anti-spoofing model: %w", err)
	}
	emoMod, err := models.BuildEmotion(cfg.Size)
	if err != nil {
		return nil, fmt.Errorf("app: building emotion model: %w", err)
	}
	detLib, err := runtime.Build(detMod, cfg.Detection)
	if err != nil {
		return nil, fmt.Errorf("app: compiling object detector: %w", err)
	}
	spoofLib, err := runtime.Build(spoofMod, cfg.AntiSpoof)
	if err != nil {
		return nil, fmt.Errorf("app: compiling anti-spoofing model: %w", err)
	}
	emoLib, err := runtime.Build(emoMod, cfg.Emotion)
	if err != nil {
		return nil, fmt.Errorf("app: compiling emotion model: %w", err)
	}
	s := &Showcase{
		cfg:      cfg,
		detGM:    runtime.NewGraphModule(detLib),
		spoofGM:  runtime.NewGraphModule(spoofLib),
		emoGM:    runtime.NewGraphModule(emoLib),
		faces:    NewFaceDetector(),
		detShape: models.InputShape(detMod),
		detQuant: models.InputQuant(detMod),
		spoofIn:  models.InputShape(spoofMod),
	}
	s.detGM.SetExecutor(cfg.Executor)
	s.spoofGM.SetExecutor(cfg.Executor)
	s.emoGM.SetExecutor(cfg.Executor)
	if err := s.calibrateSpoof(); err != nil {
		return nil, fmt.Errorf("app: calibrating anti-spoofing: %w", err)
	}
	return s, nil
}

// calibrateSpoof fits the liveness decision boundary: run the model on a
// reference live patch (bright, textured) and a reference print patch (flat,
// dimmer), set the threshold at the midpoint and the polarity from which
// side scores higher.
func (s *Showcase) calibrateSpoof() error {
	h, w := s.spoofIn[1], s.spoofIn[2]
	score := func(in *tensor.Tensor) (float64, error) {
		s.spoofGM.SetInput(s.spoofGM.InputNames()[0], in)
		if err := s.spoofGM.Run(); err != nil {
			return 0, err
		}
		return s.spoofGM.MustOutput(1).GetF(0), nil
	}
	live, err := score(video.RenderFacePatch(h, w, false, 0xCA11B))
	if err != nil {
		return err
	}
	spoof, err := score(video.RenderFacePatch(h, w, true, 0xCA11B))
	if err != nil {
		return err
	}
	s.spoofThreshold = (live + spoof) / 2
	s.spoofPolarity = 1
	if live < spoof {
		s.spoofPolarity = -1
	}
	return nil
}

// prepareDetInput resizes the frame to the detector resolution and
// quantizes it with the model's input parameters.
func (s *Showcase) prepareDetInput(img *tensor.Tensor) *tensor.Tensor {
	h, w := img.Shape[1], img.Shape[2]
	resized := video.CropResize(img, video.Rect{X: 0, Y: 0, W: w, H: h},
		s.detShape[1], s.detShape[2], 3)
	if s.detQuant == nil {
		return resized
	}
	return resized.QuantizeTo(tensor.UInt8, *s.detQuant)
}

// DetectStage runs object detection + face detection + the overlap gate,
// returning the frame result seeded with object boxes and the candidate
// face boxes (Listing 5's first two conditions).
func (s *Showcase) DetectStage(f *video.Frame) (*FrameResult, []video.Rect, error) {
	res := &FrameResult{Frame: f.Index}
	frameH, frameW := f.Image.Shape[1], f.Image.Shape[2]
	s.detGM.SetInput(s.detGM.InputNames()[0], s.prepareDetInput(f.Image))
	if err := s.detGM.Run(); err != nil {
		return nil, nil, fmt.Errorf("app: object detection: %w", err)
	}
	res.Timing.Detect = s.detGM.LastProfile().Total()
	dets, err := DecodeSSD(s.detGM.MustOutput(0), s.detGM.MustOutput(1),
		frameW, frameH, s.cfg.ScoreThreshold, 16)
	if err != nil {
		return nil, nil, err
	}
	res.Objects = dets

	var candidates []video.Rect
	for _, fb := range s.faces.Detect(f.Image) {
		for _, d := range dets {
			if video.Intersects(fb, d.Box) {
				candidates = append(candidates, fb)
				break
			}
		}
	}
	return res, candidates, nil
}

// SpoofStage judges every candidate face, accumulating results and cost into
// res.
func (s *Showcase) SpoofStage(f *video.Frame, res *FrameResult, candidates []video.Rect) error {
	for _, fb := range candidates {
		crop := video.CropResize(f.Image, fb, s.spoofIn[1], s.spoofIn[2], 3)
		s.spoofGM.SetInput(s.spoofGM.InputNames()[0], crop)
		if err := s.spoofGM.Run(); err != nil {
			return fmt.Errorf("app: anti-spoofing: %w", err)
		}
		res.Timing.AntiSpoof += s.spoofGM.LastProfile().Total()
		score := s.spoofGM.MustOutput(1).GetF(0)
		res.Faces = append(res.Faces, FaceResult{Box: fb, SpoofScore: score,
			Real: s.spoofPolarity*(score-s.spoofThreshold) >= 0})
	}
	return nil
}

// EmotionStage labels the real faces (Listing 5's gate: spoofed faces skip
// it).
func (s *Showcase) EmotionStage(f *video.Frame, res *FrameResult) error {
	for i := range res.Faces {
		fr := &res.Faces[i]
		if !fr.Real {
			continue
		}
		gray := video.CropResize(f.Image, fr.Box, 48, 48, 1)
		s.emoGM.SetInput(s.emoGM.InputNames()[0], gray)
		if err := s.emoGM.Run(); err != nil {
			return fmt.Errorf("app: emotion detection: %w", err)
		}
		res.Timing.Emotion += s.emoGM.LastProfile().Total()
		probs := s.emoGM.MustOutput(0)
		best := probs.ArgMax()
		fr.Emotion = models.EmotionLabels[best]
		fr.Confidence = probs.GetF(best)
	}
	return nil
}

// ProcessFrame runs the Figure 1 / Listing 5 flow for one frame.
func (s *Showcase) ProcessFrame(f *video.Frame) (*FrameResult, error) {
	res, candidates, err := s.DetectStage(f)
	if err != nil {
		return nil, err
	}
	if err := s.SpoofStage(f, res, candidates); err != nil {
		return nil, err
	}
	if err := s.EmotionStage(f, res); err != nil {
		return nil, err
	}
	return res, nil
}

// Modules exposes the three graph modules (the pipeline scheduler profiles
// them individually).
func (s *Showcase) Modules() (det, spoof, emo *runtime.GraphModule) {
	return s.detGM, s.spoofGM, s.emoGM
}
