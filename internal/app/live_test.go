package app

import (
	"testing"

	"repro/internal/soc"
	"repro/internal/video"
)

func TestRunLiveMatchesSequential(t *testing.T) {
	sc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := video.NewSource(160, 120, 2, 2, 777)
	if err != nil {
		t.Fatal(err)
	}
	frames := src.Frames(5)

	// Sequential reference (separate Showcase instance so module state does
	// not interleave).
	ref, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var want []*FrameResult
	for _, f := range frames {
		r, err := ref.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}

	live, err := sc.RunLive(frames, Figure5Devices())
	if err != nil {
		t.Fatal(err)
	}
	if len(live.Results) != len(want) {
		t.Fatalf("live produced %d results, want %d", len(live.Results), len(want))
	}
	for i, got := range live.Results {
		w := want[i]
		if got.Frame != w.Frame || len(got.Faces) != len(w.Faces) || len(got.Objects) != len(w.Objects) {
			t.Fatalf("frame %d diverged: %d faces vs %d", i, len(got.Faces), len(w.Faces))
		}
		for j := range got.Faces {
			if got.Faces[j].Real != w.Faces[j].Real || got.Faces[j].Emotion != w.Faces[j].Emotion {
				t.Errorf("frame %d face %d verdict differs: %+v vs %+v",
					i, j, got.Faces[j], w.Faces[j])
			}
		}
	}
}

func TestRunLivePipelines(t *testing.T) {
	sc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := video.NewSource(160, 120, 2, 2, 31)
	if err != nil {
		t.Fatal(err)
	}
	live, err := sc.RunLive(src.Frames(8), Figure5Devices())
	if err != nil {
		t.Fatal(err)
	}
	if live.Makespan <= 0 || live.SequentialTime <= 0 {
		t.Fatal("no simulated time recorded")
	}
	if live.Makespan > live.SequentialTime {
		t.Errorf("pipelined makespan (%s) exceeds sequential total (%s)",
			live.Makespan, live.SequentialTime)
	}
	if live.Speedup() < 1 {
		t.Errorf("speedup %.3f < 1", live.Speedup())
	}
	// Exclusive-resource invariant on the recorded timeline.
	perDev := map[soc.DeviceKind][]soc.Interval{}
	for _, e := range live.Timeline.Events() {
		perDev[e.Device] = append(perDev[e.Device], e)
	}
	for dev, evs := range perDev {
		for i := 1; i < len(evs); i++ {
			if evs[i].Start < evs[i-1].End-1e-15 {
				t.Fatalf("device %s double-booked: %+v then %+v", dev, evs[i-1], evs[i])
			}
		}
	}
}
