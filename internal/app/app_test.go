package app

import (
	"testing"

	"repro/internal/tensor"
	"repro/internal/video"
)

func TestFaceDetectorFindsPlantedFaces(t *testing.T) {
	src, err := video.NewSource(160, 120, 2, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	frame := src.Next()
	boxes := NewFaceDetector().Detect(frame.Image)
	if len(boxes) == 0 {
		t.Fatal("no faces detected in a scene with 2 planted faces")
	}
	// Every planted face should be covered by some detected box.
	for _, a := range frame.Truth {
		if !a.IsFace {
			continue
		}
		covered := false
		for _, b := range boxes {
			if video.IoU(a.Box, b) > 0.3 {
				covered = true
			}
		}
		if !covered {
			t.Errorf("planted face at %+v not covered by detections %v", a.Box, boxes)
		}
	}
}

func TestFaceDetectorIgnoresObjects(t *testing.T) {
	src, err := video.NewSource(160, 120, 0, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	frame := src.Next()
	boxes := NewFaceDetector().Detect(frame.Image)
	if len(boxes) != 0 {
		t.Errorf("object-only scene produced %d face boxes", len(boxes))
	}
}

func TestIoU(t *testing.T) {
	a := video.Rect{X: 0, Y: 0, W: 10, H: 10}
	b := video.Rect{X: 5, Y: 5, W: 10, H: 10}
	got := video.IoU(a, b)
	want := 25.0 / 175.0
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("IoU = %g, want %g", got, want)
	}
	if video.IoU(a, video.Rect{X: 20, Y: 20, W: 5, H: 5}) != 0 {
		t.Error("disjoint boxes must have IoU 0")
	}
	if video.IoU(a, a) != 1 {
		t.Error("identical boxes must have IoU 1")
	}
}

func TestCropResize(t *testing.T) {
	img := tensor.New(tensor.Float32, tensor.Shape{1, 8, 8, 3})
	img.Fill(0.5)
	out := video.CropResize(img, video.Rect{X: 2, Y: 2, W: 4, H: 4}, 16, 16, 3)
	if !out.Shape.Equal(tensor.Shape{1, 16, 16, 3}) {
		t.Fatalf("crop shape %s", out.Shape)
	}
	if out.At(0, 8, 8, 0) != 0.5 {
		t.Errorf("crop value %g", out.At(0, 8, 8, 0))
	}
	gray := video.CropResize(img, video.Rect{X: 0, Y: 0, W: 8, H: 8}, 4, 4, 1)
	if !gray.Shape.Equal(tensor.Shape{1, 4, 4, 1}) {
		t.Fatalf("gray shape %s", gray.Shape)
	}
	// 0.299+0.587+0.114 = 1 → grayscale of a flat 0.5 frame is 0.5.
	if v := gray.At(0, 2, 2, 0); v < 0.499 || v > 0.501 {
		t.Errorf("grayscale conversion %g", v)
	}
}

func TestShowcaseEndToEnd(t *testing.T) {
	sc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := video.NewSource(160, 120, 2, 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	processedFaces := 0
	emotions := 0
	for _, f := range src.Frames(3) {
		res, err := sc.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		if res.Timing.Detect <= 0 {
			t.Error("no detection cost recorded")
		}
		processedFaces += len(res.Faces)
		for _, fr := range res.Faces {
			if fr.Real && fr.Emotion == "" {
				t.Error("real face without emotion label")
			}
			if !fr.Real && fr.Emotion != "" {
				t.Error("spoofed face must skip emotion detection (Listing 5 gate)")
			}
			if fr.Real {
				emotions++
			}
		}
	}
	if processedFaces == 0 {
		t.Error("no faces passed the overlap gate in 3 frames")
	}
	t.Logf("processed %d faces, %d emotions", processedFaces, emotions)
}

func TestVideoDeterminism(t *testing.T) {
	a, _ := video.NewSource(64, 64, 1, 1, 5)
	b, _ := video.NewSource(64, 64, 1, 1, 5)
	fa, fb := a.Next(), b.Next()
	if !tensor.AllClose(fa.Image, fb.Image, 0, 0) {
		t.Error("same-seed video sources diverge")
	}
}

func TestDecodeSSDGridDerivation(t *testing.T) {
	// 15·g² rows with g=2 → 60 rows.
	boxes := tensor.New(tensor.Float32, tensor.Shape{1, 60, 4})
	scores := tensor.New(tensor.Float32, tensor.Shape{1, 60, 2})
	scores.Fill(0.9)
	dets, err := DecodeSSD(boxes, scores, 100, 100, 0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 60 {
		t.Errorf("decoded %d detections, want 60", len(dets))
	}
	// Bad row count must fail.
	badBoxes := tensor.New(tensor.Float32, tensor.Shape{1, 61, 4})
	badScores := tensor.New(tensor.Float32, tensor.Shape{1, 61, 2})
	if _, err := DecodeSSD(badBoxes, badScores, 100, 100, 0.5, 0); err == nil {
		t.Error("underivable grid accepted")
	}
}

func TestDecodeSSDTopK(t *testing.T) {
	boxes := tensor.New(tensor.Float32, tensor.Shape{1, 60, 4})
	scores := tensor.New(tensor.Float32, tensor.Shape{1, 60, 2})
	scores.Fill(0.8)
	dets, err := DecodeSSD(boxes, scores, 100, 100, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) != 5 {
		t.Errorf("topK not applied: %d", len(dets))
	}
}

// The calibrated anti-spoofing gate must separate live faces from printed
// attacks on the synthetic scenes: both verdicts occur, and they are
// consistent with the planted ground truth.
func TestSpoofGateSeparates(t *testing.T) {
	sc, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	src, err := video.NewSource(160, 120, 2, 2, 99) // face 0 live, face 1 spoofed
	if err != nil {
		t.Fatal(err)
	}
	realSeen, spoofSeen, mismatches, total := 0, 0, 0, 0
	for _, f := range src.Frames(6) {
		res, err := sc.ProcessFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		for _, fr := range res.Faces {
			// Match against ground truth by IoU.
			var truth *video.Actor
			for i := range f.Truth {
				a := &f.Truth[i]
				if a.IsFace && video.IoU(a.Box, fr.Box) > 0.3 {
					truth = a
				}
			}
			if truth == nil {
				continue
			}
			total++
			if fr.Real {
				realSeen++
			} else {
				spoofSeen++
			}
			if fr.Real == truth.Spoofed {
				mismatches++
			}
		}
	}
	if realSeen == 0 || spoofSeen == 0 {
		t.Errorf("gate never exercised both branches: real=%d spoof=%d", realSeen, spoofSeen)
	}
	if total > 0 && mismatches > total/4 {
		t.Errorf("calibrated gate disagrees with ground truth on %d/%d faces", mismatches, total)
	}
}
