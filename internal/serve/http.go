package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	goruntime "runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"time"

	"repro/internal/app"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/video"
)

// The JSON API surface:
//
//	POST /v1/infer    {"model":"emotion","seed":7}                → outputs
//	POST /v1/infer    {"model":"emotion","inputs":{"x":[...]}}    → outputs
//	POST /v1/showcase {"frames":2,"faces":1,"objects":1,"seed":9} → per-frame verdicts
//	GET  /healthz                                                 → liveness + drain state
//	GET  /statsz                                                  → per-model counters, device busy time
//	GET  /metricsz                                                → Prometheus text exposition
//	GET  /tracez                                                  → Chrome trace JSON (Perfetto-loadable)

// InferRequest is the /v1/infer body. Exactly one of Inputs or Seed drives
// the input tensors: Inputs binds explicit per-input data (row-major real
// values, quantized with the model's declared input parameters where
// needed); otherwise the input is synthesized deterministically from Seed.
type InferRequest struct {
	Model     string               `json:"model"`
	Seed      uint64               `json:"seed,omitempty"`
	Inputs    map[string][]float64 `json:"inputs,omitempty"`
	TimeoutMs int                  `json:"timeout_ms,omitempty"`
}

// TensorJSON is one tensor on the wire.
type TensorJSON struct {
	Shape []int     `json:"shape"`
	DType string    `json:"dtype"`
	Data  []float64 `json:"data"`
}

// InferResponse is the /v1/infer reply. TraceID duplicates the response's
// X-NP-Trace-Context trace ID in the body so programmatic clients can link
// straight to GET /tracez?id=<TraceID>.
type InferResponse struct {
	Model     string       `json:"model"`
	Version   string       `json:"version,omitempty"`
	Outputs   []TensorJSON `json:"outputs"`
	BatchSize int          `json:"batch_size"`
	QueueMs   float64      `json:"queue_ms"`
	WallMs    float64      `json:"wall_ms"`
	SimMs     float64      `json:"sim_ms"`
	TraceID   string       `json:"trace_id,omitempty"`
}

// Mount attaches an auxiliary handler (e.g. a registry's /admin/ surface)
// under the given mux pattern; it must be called before Handler.
func (s *Server) Mount(pattern string, h http.Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aux[pattern] = h
}

// Handler returns the HTTP mux serving the JSON API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/infer", s.handleInfer)
	mux.HandleFunc("/v1/showcase", s.handleShowcase)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/statsz", s.handleStats)
	mux.HandleFunc("/metricsz", s.handleMetrics)
	mux.HandleFunc("/tracez", s.handleTrace)
	mux.HandleFunc("/debugz/requests", s.handleDebugRequests)
	s.mu.RLock()
	for pattern, h := range s.aux {
		mux.Handle(pattern, h)
	}
	s.mu.RUnlock()
	return mux
}

// httpStatus maps serving errors onto status codes: 429 for overload, 503
// while draining, 404 for unknown models, 504 for deadlines that expired in
// queue, 400 for bad bindings, 500 otherwise.
func httpStatus(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownModel):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func writeErr(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// DrainRetryAfterSeconds is the Retry-After value stamped on every 503 drain
// rejection: a draining worker is expected to be replaced (or the deploy to
// cut over) on the order of a second, so routers back off briefly and retry
// elsewhere instead of hammering a dying pool.
const DrainRetryAfterSeconds = 1

// writeServeErr maps a serving error to its status code, attaching the
// Retry-After backoff hint to drain rejections so client and router retries
// are principled rather than immediate.
func writeServeErr(w http.ResponseWriter, err error) {
	code := httpStatus(err)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", strconv.Itoa(DrainRetryAfterSeconds))
	}
	writeErr(w, code, err)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	// Trace context: adopt the caller's (a router hop forwards its header and
	// we mint a child span for this edge) or mint a fresh trace when this
	// worker is the first edge. Every response — success or error — is stamped
	// with the header so the caller can fetch GET /tracez?id=<trace> later.
	tc, ok := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader))
	if ok {
		tc = tc.Child()
	} else {
		tc = obs.MintTrace()
	}
	w.Header().Set(obs.TraceHeader, tc.String())

	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	s.mu.RLock()
	e, ok := s.resolve(req.Model)
	s.mu.RUnlock()
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("%w: %q", ErrUnknownModel, req.Model))
		return
	}
	inputs, err := e.buildInputs(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ctx := obs.WithTrace(r.Context(), tc)
	if req.TimeoutMs > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMs)*time.Millisecond)
		defer cancel()
	}
	res, err := s.Submit(ctx, req.Model, inputs)
	if err != nil {
		writeServeErr(w, err)
		return
	}
	resp := InferResponse{
		Model:     req.Model,
		Version:   res.Version,
		BatchSize: res.BatchSize,
		QueueMs:   float64(res.QueueWait) / float64(time.Millisecond),
		WallMs:    float64(res.Wall) / float64(time.Millisecond),
		SimMs:     res.SimTime.Ms(),
		TraceID:   tc.TraceID,
	}
	for _, t := range res.Outputs {
		resp.Outputs = append(resp.Outputs, tensorToJSON(t))
	}
	writeJSON(w, resp)
}

// buildInputs materializes the request's input binding: explicit data when
// given, a deterministic synthetic input otherwise.
func (e *endpoint) buildInputs(req InferRequest) (map[string]*tensor.Tensor, error) {
	main := e.lib.Module.Main()
	out := make(map[string]*tensor.Tensor, len(main.Params))
	if len(req.Inputs) == 0 {
		if len(main.Params) != 1 {
			return nil, fmt.Errorf("serve: model %q has %d inputs; seed synthesis needs exactly 1 (bind inputs explicitly)",
				e.name, len(main.Params))
		}
		out[main.Params[0].Name] = models.RandomInput(e.lib.Module, req.Seed)
		return out, nil
	}
	for _, p := range main.Params {
		data, ok := req.Inputs[p.Name]
		if !ok {
			return nil, fmt.Errorf("serve: model %q: input %q missing", e.name, p.Name)
		}
		tt, ok := p.TypeAnnotation.(*relay.TensorType)
		if !ok {
			return nil, fmt.Errorf("serve: model %q: input %q has no tensor type", e.name, p.Name)
		}
		t, err := tensorFromData(data, tt)
		if err != nil {
			return nil, fmt.Errorf("serve: model %q input %q: %w", e.name, p.Name, err)
		}
		out[p.Name] = t
	}
	return out, nil
}

// tensorFromData builds a tensor of the declared input type from row-major
// real values, quantizing through the declared parameters for integer
// inputs.
func tensorFromData(data []float64, tt *relay.TensorType) (*tensor.Tensor, error) {
	if len(data) != tt.Shape.Elems() {
		return nil, fmt.Errorf("want %d elements for shape %s, got %d", tt.Shape.Elems(), tt.Shape, len(data))
	}
	f := tensor.New(tensor.Float32, tt.Shape.Clone())
	for i, v := range data {
		f.SetF(i, v)
	}
	if tt.DType == tensor.Float32 {
		return f, nil
	}
	if !tt.DType.IsQuantized() || tt.Quant == nil {
		return nil, fmt.Errorf("cannot bind explicit data to %s input without quant params", tt.DType)
	}
	return f.QuantizeTo(tt.DType, *tt.Quant), nil
}

func tensorToJSON(t *tensor.Tensor) TensorJSON {
	out := TensorJSON{Shape: []int(t.Shape.Clone()), DType: t.DType.String(), Data: make([]float64, t.Elems())}
	for i := range out.Data {
		out.Data[i] = t.GetF(i)
	}
	return out
}

// ---------------------------------------------------------------- showcase

// showcaseEndpoint wraps the three-model §4 application behind the API. An
// app.Showcase is single-threaded state, so access is serialized by the
// server's showMu — concurrency belongs to the per-model /v1/infer pools;
// /v1/showcase is the demo surface.
type showcaseEndpoint struct {
	sc *app.Showcase
}

// RegisterShowcase builds the three showcase models and mounts /v1/showcase.
func (s *Server) RegisterShowcase(cfg app.Config) error {
	sc, err := app.New(cfg)
	if err != nil {
		return err
	}
	s.showMu.Lock()
	s.showcase = &showcaseEndpoint{sc: sc}
	s.showMu.Unlock()
	return nil
}

// ShowcaseRequest is the /v1/showcase body (zero values get defaults).
type ShowcaseRequest struct {
	Frames  int    `json:"frames"`
	Faces   int    `json:"faces"`
	Objects int    `json:"objects"`
	Width   int    `json:"width"`
	Height  int    `json:"height"`
	Seed    uint64 `json:"seed"`
}

// ShowcaseFace is one face verdict on the wire.
type ShowcaseFace struct {
	X          int     `json:"x"`
	Y          int     `json:"y"`
	W          int     `json:"w"`
	H          int     `json:"h"`
	SpoofScore float64 `json:"spoof_score"`
	Real       bool    `json:"real"`
	Emotion    string  `json:"emotion,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// ShowcaseFrame is one frame's result on the wire.
type ShowcaseFrame struct {
	Frame    int            `json:"frame"`
	Objects  int            `json:"objects"`
	Faces    []ShowcaseFace `json:"faces"`
	DetectMs float64        `json:"detect_sim_ms"`
	SpoofMs  float64        `json:"spoof_sim_ms"`
	EmoMs    float64        `json:"emotion_sim_ms"`
}

// ShowcaseResponse is the /v1/showcase reply.
type ShowcaseResponse struct {
	Frames     []ShowcaseFrame `json:"frames"`
	TotalSimMs float64         `json:"total_sim_ms"`
}

func (s *Server) handleShowcase(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("POST only"))
		return
	}
	if s.Draining() {
		writeServeErr(w, ErrDraining)
		return
	}
	s.showMu.Lock()
	ep := s.showcase
	s.showMu.Unlock()
	if ep == nil {
		writeErr(w, http.StatusNotImplemented, errors.New("showcase endpoint not registered"))
		return
	}
	var req ShowcaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	if req.Frames <= 0 {
		req.Frames = 1
	}
	if req.Frames > 64 {
		writeErr(w, http.StatusBadRequest, errors.New("frames > 64"))
		return
	}
	if req.Width <= 0 {
		req.Width = 160
	}
	if req.Height <= 0 {
		req.Height = 120
	}
	if req.Faces < 0 || req.Objects < 0 {
		writeErr(w, http.StatusBadRequest, errors.New("negative faces/objects"))
		return
	}
	if req.Faces == 0 {
		req.Faces = 2
	}
	if req.Objects == 0 {
		req.Objects = 2
	}
	src, err := video.NewSource(req.Width, req.Height, req.Faces, req.Objects, req.Seed)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	var resp ShowcaseResponse
	var total soc.Seconds
	s.showMu.Lock()
	defer s.showMu.Unlock()
	for i := 0; i < req.Frames; i++ {
		res, err := ep.sc.ProcessFrame(src.Next())
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		fr := ShowcaseFrame{
			Frame:    res.Frame,
			Objects:  len(res.Objects),
			DetectMs: res.Timing.Detect.Ms(),
			SpoofMs:  res.Timing.AntiSpoof.Ms(),
			EmoMs:    res.Timing.Emotion.Ms(),
		}
		for _, f := range res.Faces {
			fr.Faces = append(fr.Faces, ShowcaseFace{
				X: f.Box.X, Y: f.Box.Y, W: f.Box.W, H: f.Box.H,
				SpoofScore: f.SpoofScore, Real: f.Real,
				Emotion: f.Emotion, Confidence: f.Confidence,
			})
		}
		total += res.Timing.Total()
		resp.Frames = append(resp.Frames, fr)
	}
	resp.TotalSimMs = total.Ms()
	writeJSON(w, resp)
}

// ------------------------------------------------------------------ health

// BuildInfo identifies the running binary on /healthz.
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Path      string `json:"path,omitempty"`
	Revision  string `json:"vcs_revision,omitempty"`
}

// EndpointHealth is one endpoint's row in the /healthz report. The fleet
// router's health checker consumes Name/Version/Draining to know which model
// revisions a worker is actually serving.
type EndpointHealth struct {
	Name     string   `json:"name"`
	Version  string   `json:"version,omitempty"`
	Draining bool     `json:"draining"`
	Pool     int      `json:"pool"`
	Devices  []string `json:"devices"`
}

// HealthResponse is the /healthz reply. The JSON keys are pinned by
// TestHealthzKeysPinned — the fleet router depends on them.
type HealthResponse struct {
	Status    string            `json:"status"`
	Draining  bool              `json:"draining"`
	Models    []string          `json:"models"`
	Build     BuildInfo         `json:"build"`
	Endpoints []EndpointHealth  `json:"endpoints"`
	Aliases   map[string]string `json:"aliases,omitempty"`
	// SLO reports each configured objective's rolling-window state. The fleet
	// router reads it to penalize workers that are burning error budget.
	SLO []obs.SLOStatus `json:"slo,omitempty"`
}

// Health assembles the /healthz report: liveness, drain state, every
// routable model name, build identity, and per-endpoint version/drain rows.
func (s *Server) Health() HealthResponse {
	resp := HealthResponse{
		Status: "ok",
		Build:  BuildInfo{GoVersion: goruntime.Version()},
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		resp.Build.Path = bi.Main.Path
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				resp.Build.Revision = kv.Value
			}
		}
	}
	resp.Models = s.Models()
	resp.Aliases = s.Aliases()
	resp.SLO = s.slo.StatusAll()
	if len(resp.Aliases) == 0 {
		resp.Aliases = nil
	}
	s.mu.RLock()
	resp.Draining = s.draining
	names := make([]string, 0, len(s.endpoints))
	for n := range s.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := s.endpoints[n]
		eh := EndpointHealth{
			Name:     n,
			Version:  e.opts.Version,
			Draining: e.draining,
			Pool:     e.opts.Pool,
		}
		for _, d := range e.opts.Devices {
			eh.Devices = append(eh.Devices, d.String())
		}
		resp.Endpoints = append(resp.Endpoints, eh)
	}
	s.mu.RUnlock()
	return resp
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Health())
}

// StatsResponse is the /statsz reply.
type StatsResponse struct {
	UptimeMs float64            `json:"uptime_ms"`
	Draining bool               `json:"draining"`
	Models   []ModelStats       `json:"models"`
	DeviceMs map[string]float64 `json:"device_busy_sim_ms"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeMs: float64(time.Since(s.start)) / float64(time.Millisecond),
		Draining: s.Draining(),
		Models:   s.Stats(),
		DeviceMs: map[string]float64{},
	}
	for _, k := range soc.AllDeviceKinds() {
		resp.DeviceMs[k.String()] = s.timeline.BusyTime(k).Ms()
	}
	writeJSON(w, resp)
}

// handleMetrics renders the server's instrument registry in Prometheus text
// exposition format. Point-in-time gauges (draining, uptime, per-device
// simulated busy time) are refreshed at scrape time; counters and histograms
// accrue continuously on the serving path.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.Gauge("serve_uptime_seconds", "Wall-clock time since server start.", obs.L()).
		Set(time.Since(s.start).Seconds())
	drain := 0.0
	if s.Draining() {
		drain = 1
	}
	s.metrics.Gauge("serve_draining", "1 while graceful shutdown is in progress.", obs.L()).
		Set(drain)
	for _, k := range soc.AllDeviceKinds() {
		s.metrics.Gauge("serve_device_busy_sim_seconds",
			"Simulated exclusive busy time per device.", obs.L("device", k.String())).
			Set(float64(s.timeline.BusyTime(k)))
	}
	s.slo.ExportMetrics(s.metrics)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w)
}

// handleTrace exports the tracer's span rings as Chrome trace_event JSON —
// load the response in Perfetto (ui.perfetto.dev) or chrome://tracing to see
// each worker's coalesce / lock-wait / execute phases on its own row.
// ?id=<32 hex trace id> narrows the export to the spans of one distributed
// trace; the export always carries the tracer epoch so a fleet router can
// stitch multiple workers' exports onto one timeline (obs.StitchChromeTraces).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans, names := s.tracer.Snapshot()
	if id := r.URL.Query().Get("id"); id != "" {
		if err := obs.ValidTraceID(id); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		spans = obs.FilterByTraceID(spans, id)
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteChromeTraceEpoch(w, spans, names, s.tracer.Epoch()); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
	}
}

// DebugRequestsResponse is the /debugz/requests reply: the flight recorder's
// two lanes plus its control state. Recent is oldest-first admission order;
// Slow is worst-first by total latency.
type DebugRequestsResponse struct {
	Enabled         bool               `json:"enabled"`
	SlowThresholdMs float64            `json:"slow_threshold_ms"`
	Dropped         uint64             `json:"dropped"`
	Recent          []obs.FlightRecord `json:"recent"`
	Slow            []obs.FlightRecord `json:"slow"`
}

// handleDebugRequests dumps the per-request flight recorder. Each record's
// trace_id links to GET /tracez?id=<trace_id> for the span-level view.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	f := s.flight.Load()
	writeJSON(w, DebugRequestsResponse{
		Enabled:         f.Enabled(),
		SlowThresholdMs: f.SlowThresholdMs(),
		Dropped:         f.Dropped(),
		Recent:          f.Snapshot(),
		Slow:            f.Slow(),
	})
}
