package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Serve a couple of requests so counters and histograms have samples.
	for seed := 0; seed < 3; seed++ {
		resp, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "emotion", Seed: uint64(seed)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("infer status %d: %s", resp.StatusCode, body)
		}
	}

	resp, body := getBody(t, ts.URL+"/metricsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want the Prometheus text exposition type", ct)
	}
	text := string(body)
	for _, want := range []string{
		`# TYPE serve_requests_total counter`,
		`serve_requests_total{model="emotion",outcome="completed"} 3`,
		`# TYPE serve_queue_wait_seconds histogram`,
		`serve_queue_wait_seconds_bucket{model="emotion",le="+Inf"} 3`,
		`serve_exec_seconds_count{model="emotion"} 3`,
		`serve_latency_seconds_sum{model="emotion"}`,
		`# TYPE serve_uptime_seconds gauge`,
		`serve_device_busy_sim_seconds{device="apu"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// Every non-comment line must be "name{labels} value".
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestHTTPTraceEndpoint(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "emotion", Seed: 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d: %s", resp.StatusCode, body)
	}

	resp, body := getBody(t, ts.URL+"/tracez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Cat  string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, body)
	}
	var workerNamed, execSpan bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			workerNamed = true
		}
		if ev.Ph == "X" && strings.HasPrefix(ev.Name, "execute:emotion") {
			execSpan = true
		}
	}
	if !workerNamed || !execSpan {
		t.Errorf("trace missing worker thread names (%v) or execute span (%v): %d events",
			workerNamed, execSpan, len(doc.TraceEvents))
	}
}

// /statsz stays backward compatible: every pre-existing key survives, and
// the new queue-wait/exec split is additive.
func TestStatszJSONKeys(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "emotion", Seed: 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d: %s", resp.StatusCode, body)
	}
	resp, body := getBody(t, ts.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Models []map[string]any `json:"models"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Models) != 1 {
		t.Fatalf("got %d models in statsz, want 1: %s", len(doc.Models), body)
	}
	m := doc.Models[0]
	for _, key := range []string{
		// The seed-era contract.
		"model", "admitted", "completed", "rejected", "expired", "failed",
		"batches", "max_batch", "mean_batch", "sim_ms", "latency",
		// PR 5 additions.
		"queue_wait_ms", "exec_ms", "queue_wait", "exec",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("statsz model entry missing key %q: %v", key, m)
		}
	}
	if m["completed"] != float64(1) {
		t.Errorf("completed = %v, want 1", m["completed"])
	}
	// The split is consistent: queue wait and exec each bound the latency.
	lat := m["latency"].(map[string]any)
	if lat["mean_ms"].(float64) <= 0 {
		t.Errorf("latency mean_ms = %v, want > 0", lat["mean_ms"])
	}
	if m["exec_ms"].(float64) <= 0 || m["exec_ms"].(float64) > lat["mean_ms"].(float64) {
		t.Errorf("exec_ms = %v, want in (0, mean latency %v]", m["exec_ms"], lat["mean_ms"])
	}
}
