package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestInferTraceRoundTrip pins the single-worker trace contract: a request
// without a trace header gets one minted, the response header and body agree,
// the flight recorder retains a record under the same trace ID, and
// /tracez?id= narrows the span export to that request.
func TestInferTraceRoundTrip(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	s.SetWorkerKey("d9000-0")
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "emotion", Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d: %s", resp.StatusCode, body)
	}
	tc, ok := obs.ParseTraceContext(resp.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("response %s header %q is not a valid trace context",
			obs.TraceHeader, resp.Header.Get(obs.TraceHeader))
	}
	var ir InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.TraceID != tc.TraceID {
		t.Fatalf("body trace_id %q != header trace id %q", ir.TraceID, tc.TraceID)
	}

	// The flight recorder holds the request under the same trace ID, with the
	// worker key and device set stamped.
	_, dbg := getBody(t, ts.URL+"/debugz/requests")
	var dr DebugRequestsResponse
	if err := json.Unmarshal(dbg, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Enabled || dr.SlowThresholdMs != DefaultSlowThresholdMs {
		t.Errorf("debugz state = enabled %v threshold %v, want enabled with default threshold",
			dr.Enabled, dr.SlowThresholdMs)
	}
	var rec *obs.FlightRecord
	for i := range dr.Recent {
		if dr.Recent[i].TraceID == tc.TraceID {
			rec = &dr.Recent[i]
		}
	}
	if rec == nil {
		t.Fatalf("no flight record for trace %s in %+v", tc.TraceID, dr.Recent)
	}
	if rec.Model != "emotion" || rec.Status != "ok" || rec.Worker != "d9000-0" {
		t.Errorf("flight record = %+v, want model emotion / ok / worker d9000-0", rec)
	}
	if rec.Devices == "" || rec.TotalMs <= 0 {
		t.Errorf("flight record missing device set or timing: %+v", rec)
	}

	// /tracez?id= filters to this request's spans only.
	_, tr := getBody(t, ts.URL+"/tracez?id="+tc.TraceID)
	var doc struct {
		EpochUnixUs int64 `json:"epochUnixUs"`
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tr, &doc); err != nil {
		t.Fatalf("filtered trace is not JSON: %v\n%s", err, tr)
	}
	if doc.EpochUnixUs == 0 {
		t.Error("trace export lost the tracer epoch (stitching needs it)")
	}
	var sawExec bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		if ev.Args[obs.TraceArg] != tc.TraceID {
			t.Errorf("span %q in filtered export lacks the trace arg: %v", ev.Name, ev.Args)
		}
		if strings.HasPrefix(ev.Name, "execute:emotion") {
			sawExec = true
		}
	}
	if !sawExec {
		t.Error("filtered trace lost the execute span")
	}
}

// TestInferAdoptsCallerTrace: a request arriving with a trace header (a
// router hop) keeps the trace ID and mints a fresh span ID for this edge.
func TestInferAdoptsCallerTrace(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	up := obs.MintTrace()
	payload, _ := json.Marshal(InferRequest{Model: "emotion", Seed: 1})
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/infer", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, up.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d", resp.StatusCode)
	}
	tc, ok := obs.ParseTraceContext(resp.Header.Get(obs.TraceHeader))
	if !ok {
		t.Fatalf("bad response trace header %q", resp.Header.Get(obs.TraceHeader))
	}
	if tc.TraceID != up.TraceID {
		t.Errorf("worker replaced the caller's trace id: %s != %s", tc.TraceID, up.TraceID)
	}
	if tc.SpanID == up.SpanID {
		t.Error("worker forwarded the caller's span id instead of minting a child")
	}
}

func TestTracezRejectsBadID(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := getBody(t, ts.URL+"/tracez?id=nothex")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ?id= got status %d, want 400", resp.StatusCode)
	}
}

// TestHealthzAndMetricszCarrySLO: a configured objective shows up in the
// /healthz slo block and as np_slo_* gauges on /metricsz.
func TestHealthzAndMetricszCarrySLO(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	s.SetSLO("emotion", obs.SLO{ObjectiveQuantile: 0.5, ThresholdMs: 60_000})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if resp, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "emotion", Seed: 1}); resp.StatusCode != http.StatusOK {
		t.Fatalf("infer status %d: %s", resp.StatusCode, body)
	}

	_, hb := getBody(t, ts.URL+"/healthz")
	var hr HealthResponse
	if err := json.Unmarshal(hb, &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.SLO) != 1 {
		t.Fatalf("healthz slo block = %+v, want one entry", hr.SLO)
	}
	st := hr.SLO[0]
	if st.Model != "emotion" || st.Requests != 1 || !st.Healthy {
		t.Errorf("slo status = %+v, want emotion with 1 healthy request", st)
	}

	_, mb := getBody(t, ts.URL+"/metricsz")
	for _, want := range []string{
		`np_slo_healthy{model="emotion"} 1`,
		`np_slo_window_requests{model="emotion"} 1`,
		`np_slo_burn_rate{model="emotion"} 0`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metricsz missing %q", want)
		}
	}
}
