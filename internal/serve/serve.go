// Package serve is the concurrent inference-serving layer over the compiled
// runtime: it turns built libraries into deadline-aware, goroutine-safe
// endpoints — the ROADMAP's "serve heavy traffic" direction applied to the
// paper's §5 scheduling model.
//
// Three mechanisms compose per registered model:
//
//   - A module pool: N independently planned GraphModule instances over one
//     shared Lib (plan lowered once, one arena per instance), checked out per
//     batch. Steady-state serving therefore stays allocation-free inside the
//     executor while remaining safe under arbitrary client concurrency.
//   - A dynamic micro-batcher: same-model requests arriving within a
//     configurable window coalesce into one device reservation; results fan
//     back out with outputs copied out of the arena (OutputCopy) before the
//     module returns to the pool.
//   - Admission control: a bounded queue with per-request context deadlines.
//     A full queue rejects immediately with ErrOverloaded (HTTP 429) rather
//     than blocking; a request whose deadline expires while queued is
//     answered with its context error without ever executing; Drain stops
//     admission and lets workers finish what was already admitted.
//
// Device exclusivity reuses internal/pipeline's model: every batch holds the
// wall-clock locks of its model's simulated device set for the duration of
// execution, so an APU-bound model and a CPU-bound model overlap while two
// APU models serialize — exactly the paper's exclusive-resource rule, applied
// to request traffic instead of video frames.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/tensor"
	"repro/internal/topi"
)

// Typed admission errors (the HTTP layer maps these to status codes).
var (
	// ErrOverloaded reports a full admission queue: the request was rejected
	// immediately instead of being allowed to queue without bound.
	ErrOverloaded = errors.New("serve: overloaded (admission queue full)")
	// ErrDraining reports that the server has begun graceful shutdown and
	// admits no new requests.
	ErrDraining = errors.New("serve: draining")
	// ErrUnknownModel reports a request for a model that was never registered.
	ErrUnknownModel = errors.New("serve: unknown model")
)

// ModelOptions configures one registered endpoint.
type ModelOptions struct {
	// Version labels the model revision this endpoint serves. It is carried
	// on every Result and in /healthz and /statsz, so clients and the fleet
	// router can attribute a response to the exact revision that produced it.
	// Registries deploying versioned endpoints set it; direct registrations
	// may leave it empty.
	Version string
	// Pool is the number of GraphModule instances (and worker goroutines);
	// default 2.
	Pool int
	// QueueDepth bounds the admission queue; default 64.
	QueueDepth int
	// MaxBatch caps the dynamic micro-batch size; <= 1 disables batching.
	MaxBatch int
	// BatchWindow is how long a worker holds the first request of a batch
	// waiting for companions; default 2ms. Ignored when MaxBatch <= 1.
	BatchWindow time.Duration
	// Devices is the simulated device set the model occupies exclusively
	// while executing. Defaults to the set implied by the library's build
	// options: CPU, plus the NIR target devices on the BYOC path.
	Devices []soc.DeviceKind
	// Executor selects the execution strategy for the pooled modules.
	Executor runtime.ExecutorKind
	// Gate, when non-nil, is invoked with the batch size immediately before
	// each batch executes. It exists for tests and benchmarks to shape
	// traffic deterministically (e.g. hold a worker to force queueing).
	Gate func(batch int)
}

func (o ModelOptions) withDefaults(lib *runtime.Lib) ModelOptions {
	if o.Pool <= 0 {
		o.Pool = 2
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1
	}
	if o.BatchWindow <= 0 {
		o.BatchWindow = 2 * time.Millisecond
	}
	if len(o.Devices) == 0 {
		o.Devices = LibDevices(lib)
	}
	return o
}

// LibDevices derives the exclusive device set a built library occupies: the
// host CPU always (TVM kernels and dispatch run there), plus every NeuroPilot
// target device when the library was partitioned for NIR.
func LibDevices(lib *runtime.Lib) []soc.DeviceKind {
	set := map[soc.DeviceKind]bool{soc.KindCPU: true}
	if lib.Opts.UseNIR {
		for _, d := range lib.Opts.NIRDevices {
			set[d] = true
		}
	}
	devs := make([]soc.DeviceKind, 0, len(set))
	for d := range set {
		devs = append(devs, d)
	}
	sort.Slice(devs, func(i, j int) bool { return devs[i] < devs[j] })
	return devs
}

// Result is one request's response.
type Result struct {
	// Outputs are detached copies (no arena aliasing): valid indefinitely.
	Outputs []*tensor.Tensor
	// Version is the model revision of the endpoint that served the request
	// (ModelOptions.Version; empty for unversioned registrations). Because it
	// is stamped by the executing worker, a response can never mix one
	// version's outputs with another's label during a hot cutover.
	Version string
	// BatchSize is how many requests the micro-batcher coalesced into the
	// device reservation that served this one (1 = unbatched).
	BatchSize int
	// QueueWait is wall-clock time spent in the admission queue (including
	// the batch-gathering window).
	QueueWait time.Duration
	// Wall is wall-clock execution time of this request's own Run.
	Wall time.Duration
	// SimTime is the simulated device cost of this request's inference.
	SimTime soc.Seconds
}

type outcome struct {
	res *Result
	err error
}

type request struct {
	ctx      context.Context
	inputs   map[string]*tensor.Tensor
	ch       chan outcome
	enqueued time.Time
	// trace is the request's distributed trace context (zero when untraced).
	// Workers stamp it on their spans and flight records so one request can be
	// followed router → worker → batch afterwards.
	trace obs.TraceContext
}

func (r *request) respond(res *Result, err error) {
	r.ch <- outcome{res: res, err: err}
}

// Server hosts the registered model endpoints behind one admission-controlled
// front door, sharing a device-lock set and a virtual timeline across all of
// them.
type Server struct {
	mu        sync.RWMutex
	endpoints map[string]*endpoint
	// aliases route public model names to endpoint names: a versioned
	// registry registers endpoints as "model@version" and repoints the
	// public alias atomically, so hot-load cutover and rollback are a single
	// map write under mu. Submit resolves aliases before endpoints.
	aliases  map[string]string
	draining bool
	drainCh  chan struct{}
	locks    *pipeline.DeviceLocks
	timeline *soc.Timeline
	start    time.Time
	metrics  *obs.Registry
	tracer   *obs.Tracer
	// flight is an atomic pointer so ConfigureFlightRecorder can swap the
	// recorder without adding a lock to the per-request Record path.
	flight atomic.Pointer[obs.FlightRecorder]
	slo    *obs.SLOTracker
	aux    map[string]http.Handler
	// workerKey is this process's fleet device key (SetWorkerKey), stamped on
	// flight records so fleet-merged /debugz/requests attributes each record.
	workerKey string

	showMu   sync.Mutex
	showcase *showcaseEndpoint
}

// DefaultSlowThresholdMs is the flight recorder's default slow-lane latency
// threshold: requests at or past it are retained among the worst-N even after
// the main ring wraps.
const DefaultSlowThresholdMs = 250

// NewServer returns an empty server; register models before serving.
func NewServer() *Server {
	s := &Server{
		endpoints: map[string]*endpoint{},
		aliases:   map[string]string{},
		drainCh:   make(chan struct{}),
		locks:     &pipeline.DeviceLocks{},
		timeline:  soc.NewTimeline(),
		start:     time.Now(),
		metrics:   obs.NewRegistry(),
		tracer:    obs.NewTracer(0),
		slo:       obs.NewSLOTracker(),
		aux:       map[string]http.Handler{},
	}
	s.flight.Store(obs.NewFlightRecorder(0, 0, DefaultSlowThresholdMs))
	// Surface per-kernel launch counts and cumulative kernel time on
	// /metricsz alongside the serving metrics.
	topi.EnableKernelMetrics(s.metrics)
	return s
}

// Timeline exposes the shared virtual timeline (per-device busy accounting
// for /statsz).
func (s *Server) Timeline() *soc.Timeline { return s.timeline }

// Metrics exposes the server's instrument registry (/metricsz renders it in
// Prometheus text exposition).
func (s *Server) Metrics() *obs.Registry { return s.metrics }

// Tracer exposes the server's wall-clock span tracer: every worker records
// queue-wait, batch-coalesce, device-lock-wait, and execute spans on its own
// track, and /tracez exports the ring as Chrome trace JSON.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// FlightRecorder exposes the per-request black box behind /debugz/requests.
func (s *Server) FlightRecorder() *obs.FlightRecorder { return s.flight.Load() }

// ConfigureFlightRecorder replaces the flight recorder (ring capacity, slow
// lane size, slow threshold in ms — zeros take the defaults). Records held by
// the previous recorder are discarded, so configure before taking traffic.
func (s *Server) ConfigureFlightRecorder(capacity, slowN int, slowMs float64) {
	s.flight.Store(obs.NewFlightRecorder(capacity, slowN, slowMs))
}

// SLOTracker exposes the per-model objective tracker; /healthz reports its
// statuses and /metricsz exports np_slo_* gauges from it.
func (s *Server) SLOTracker() *obs.SLOTracker { return s.slo }

// SetSLO installs (or replaces) the latency objective tracked for a serving
// name. The name must match what requests are observed under — the endpoint
// name, i.e. "model@version" for registry deploys.
func (s *Server) SetSLO(model string, slo obs.SLO) { s.slo.Set(model, slo) }

// SetWorkerKey records this process's fleet device key; flight records carry
// it so fleet-merged debug dumps attribute each record to its worker.
func (s *Server) SetWorkerKey(key string) {
	s.mu.Lock()
	s.workerKey = key
	s.mu.Unlock()
}

// WorkerKey returns the fleet device key set by SetWorkerKey ("" outside a
// fleet).
func (s *Server) WorkerKey() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.workerKey
}

// Register creates an endpoint named name over a built library and starts
// its worker pool.
func (s *Server) Register(name string, lib *runtime.Lib, opts ModelOptions) error {
	if name == "" {
		return errors.New("serve: empty model name")
	}
	opts = opts.withDefaults(lib)
	e, err := newEndpoint(name, lib, opts, s)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if _, dup := s.endpoints[name]; dup {
		return fmt.Errorf("serve: model %q already registered", name)
	}
	if _, dup := s.aliases[name]; dup {
		return fmt.Errorf("serve: name %q already in use as an alias", name)
	}
	s.endpoints[name] = e
	e.startWorkers()
	return nil
}

// SetAlias atomically routes the public name to the named endpoint: requests
// submitted under the alias resolve to the target from this call on, with no
// window in which the name is unroutable. Repointing an existing alias is the
// hot-load cutover (and rollback) primitive.
func (s *Server) SetAlias(public, target string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, clash := s.endpoints[public]; clash {
		return fmt.Errorf("serve: alias %q collides with a registered endpoint", public)
	}
	e, ok := s.endpoints[target]
	if !ok {
		return fmt.Errorf("serve: alias target %w: %q", ErrUnknownModel, target)
	}
	if e.draining {
		return fmt.Errorf("serve: alias target %q is draining", target)
	}
	s.aliases[public] = target
	return nil
}

// RemoveAlias deletes a public alias (the endpoint it pointed to stays up).
func (s *Server) RemoveAlias(public string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.aliases, public)
}

// Aliases snapshots the public-name routing table.
func (s *Server) Aliases() map[string]string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]string, len(s.aliases))
	for k, v := range s.aliases {
		out[k] = v
	}
	return out
}

// resolve maps a request name through the alias table to its endpoint.
// Callers hold s.mu (read or write).
func (s *Server) resolve(name string) (*endpoint, bool) {
	if target, ok := s.aliases[name]; ok {
		name = target
	}
	e, ok := s.endpoints[name]
	return e, ok
}

// Models lists every routable name, sorted: registered endpoints plus public
// aliases. This is what a fleet router treats as the worker's model set.
func (s *Server) Models() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.endpoints)+len(s.aliases))
	for n := range s.endpoints {
		out = append(out, n)
	}
	for n := range s.aliases {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Endpoint returns the endpoint's options (introspection); name may be an
// alias.
func (s *Server) Endpoint(name string) (ModelOptions, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.resolve(name)
	if !ok {
		return ModelOptions{}, fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	return e.opts, nil
}

// Submit runs one inference on the named model. inputs must bind exactly the
// model's declared input names; outputs in the Result are detached copies.
// It blocks until the request is served, rejected, or times out — every
// admitted request is guaranteed a response, including during drain.
func (s *Server) Submit(ctx context.Context, model string, inputs map[string]*tensor.Tensor) (*Result, error) {
	s.mu.RLock()
	e, ok := s.resolve(model)
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, model)
	}
	if err := e.checkInputs(inputs); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	req := &request{ctx: ctx, inputs: inputs, ch: make(chan outcome, 1), enqueued: time.Now()}
	// Carry the caller's trace context (if any) onto the queued request so
	// the executing worker can stamp its spans and flight record with it.
	req.trace, _ = obs.TraceFrom(ctx)

	// Admission: the read lock pairs with Drain's (and DrainEndpoint's)
	// write lock so a request can never slip into a queue after the workers
	// have drained it. The alias is re-resolved under the same lock as the
	// enqueue, so a hot cutover between the input check above and admission
	// routes the request to the endpoint that is current at admission time.
	s.mu.RLock()
	if s.draining {
		s.mu.RUnlock()
		return nil, ErrDraining
	}
	if e, ok = s.resolve(model); !ok {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, model)
	}
	if e.draining {
		s.mu.RUnlock()
		return nil, fmt.Errorf("%w (model %q)", ErrDraining, model)
	}
	select {
	case e.queue <- req:
		e.stats.admitted()
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		e.stats.rejected()
		return nil, ErrOverloaded
	}

	out := <-req.ch
	if out.err != nil {
		return nil, out.err
	}
	return out.res, nil
}

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// Drain begins graceful shutdown: new submissions are rejected with
// ErrDraining, already-admitted requests are served (or answered with their
// deadline error), and Drain returns when every worker has exited.
func (s *Server) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.drainCh)
	}
	eps := make([]*endpoint, 0, len(s.endpoints))
	for _, e := range s.endpoints {
		eps = append(eps, e)
	}
	s.mu.Unlock()
	for _, e := range eps {
		e.wg.Wait()
	}
}

// DrainEndpoint gracefully retires one endpoint while the server keeps
// serving everything else: admission to it stops (ErrDraining), its workers
// finish every already-admitted request, and the endpoint is removed once
// they exit. An endpoint still targeted by an alias cannot be drained —
// repoint or remove the alias first (the registry's cutover discipline), so
// a routable name never points at a dying pool.
func (s *Server) DrainEndpoint(name string) error {
	s.mu.Lock()
	e, ok := s.endpoints[name]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownModel, name)
	}
	for public, target := range s.aliases {
		if target == name {
			s.mu.Unlock()
			return fmt.Errorf("serve: endpoint %q still serves alias %q; repoint it before draining", name, public)
		}
	}
	if !e.draining {
		e.draining = true
		close(e.drainCh)
	}
	s.mu.Unlock()
	e.wg.Wait()
	s.mu.Lock()
	delete(s.endpoints, name)
	s.mu.Unlock()
	return nil
}

// Stats snapshots every endpoint's counters, sorted by model name.
func (s *Server) Stats() []ModelStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ModelStats, 0, len(s.endpoints))
	for _, e := range s.endpoints {
		st := e.stats.snapshot(e.name)
		st.Version = e.opts.Version
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}
