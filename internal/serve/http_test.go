package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/app"
	"repro/internal/models"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPInferSeedMatchesSubmit(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "emotion", Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ir InferResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Model != "emotion" || len(ir.Outputs) == 0 || ir.BatchSize < 1 {
		t.Fatalf("bad response: %+v", ir)
	}

	// The HTTP path must agree with a direct Submit of the same seed.
	inName := runtime.NewGraphModule(lib).InputNames()[0]
	direct, err := s.Submit(context.Background(), "emotion",
		map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, 7)})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range ir.Outputs {
		want := direct.Outputs[i]
		if len(o.Data) != want.Elems() {
			t.Fatalf("output %d: %d elements, want %d", i, len(o.Data), want.Elems())
		}
		for j, v := range o.Data {
			if v != want.GetF(j) {
				t.Fatalf("output %d[%d] = %g, want %g", i, j, v, want.GetF(j))
			}
		}
	}
	if ir.SimMs <= 0 {
		t.Errorf("sim_ms = %g, want > 0", ir.SimMs)
	}
}

func TestHTTPInferExplicitInputs(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inName := runtime.NewGraphModule(lib).InputNames()[0]
	in := models.RandomInput(lib.Module, 5)
	data := make([]float64, in.Elems())
	for i := range data {
		data[i] = in.GetF(i)
	}
	resp, body := postJSON(t, ts.URL+"/v1/infer",
		InferRequest{Model: "emotion", Inputs: map[string][]float64{inName: data}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	// Wrong element count → 400.
	resp, _ = postJSON(t, ts.URL+"/v1/infer",
		InferRequest{Model: "emotion", Inputs: map[string][]float64{inName: {1, 2, 3}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("short input: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPStatusCodes(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, _ := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "missing"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown model: status %d, want 404", resp.StatusCode)
	}

	r2, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: status %d, want 400", r2.StatusCode)
	}

	r3, err := http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET infer: status %d, want 405", r3.StatusCode)
	}

	if httpStatus(ErrOverloaded) != http.StatusTooManyRequests {
		t.Error("ErrOverloaded must map to 429")
	}
	if httpStatus(ErrDraining) != http.StatusServiceUnavailable {
		t.Error("ErrDraining must map to 503")
	}
	if httpStatus(context.DeadlineExceeded) != http.StatusGatewayTimeout {
		t.Error("DeadlineExceeded must map to 504")
	}
}

func TestHTTPHealthAndStats(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Serve one request so stats are non-trivial.
	if resp, body := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "emotion", Seed: 1}); resp.StatusCode != 200 {
		t.Fatalf("infer: %d %s", resp.StatusCode, body)
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string   `json:"status"`
		Draining bool     `json:"draining"`
		Models   []string `json:"models"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.Status != "ok" || health.Draining || len(health.Models) != 1 {
		t.Errorf("bad health: %+v", health)
	}

	sr, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if len(stats.Models) != 1 || stats.Models[0].Completed != 1 {
		t.Errorf("bad stats: %+v", stats)
	}
	if stats.DeviceMs["cpu"] <= 0 {
		t.Errorf("cpu busy %g, want > 0", stats.DeviceMs["cpu"])
	}
	if stats.Models[0].Latency.P50Ms <= 0 {
		t.Errorf("p50 latency %g, want > 0", stats.Models[0].Latency.P50Ms)
	}
}

func TestHTTPShowcase(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three models")
	}
	s := NewServer()
	if err := s.RegisterShowcase(app.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/showcase",
		ShowcaseRequest{Frames: 1, Faces: 1, Objects: 1, Seed: 42})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ShowcaseResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Frames) != 1 || sr.TotalSimMs <= 0 {
		t.Fatalf("bad showcase response: %+v", sr)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/showcase", ShowcaseRequest{Frames: 1000})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("frames cap: status %d, want 400", resp.StatusCode)
	}
}

func TestHTTPShowcaseUnregistered(t *testing.T) {
	s := NewServer()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := postJSON(t, ts.URL+"/v1/showcase", ShowcaseRequest{Frames: 1})
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("status %d, want 501", resp.StatusCode)
	}
}
