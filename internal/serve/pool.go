package serve

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/runtime"
	"repro/internal/tensor"
)

// endpoint is one registered model: its admission queue, its module pool,
// and its worker goroutines (one per pooled instance).
type endpoint struct {
	name   string
	lib    *runtime.Lib
	opts   ModelOptions
	server *Server

	queue chan *request
	pool  chan *runtime.GraphModule
	wg    sync.WaitGroup
	stats *statsCollector

	// drainCh closes when this endpoint alone drains (DrainEndpoint); the
	// server-wide drainCh still drains every endpoint at once. draining is
	// guarded by the server mutex and checked at admission.
	drainCh  chan struct{}
	draining bool

	// inputNames is the model's declared input set, cached at registration:
	// pooled modules retain SetInput bindings across requests, so admission
	// must require every request to bind the full set (a partial binding
	// would silently reuse a previous request's tensor).
	inputNames []string

	// devicesLabel is the exclusive device set comma-joined once at
	// registration, so per-request flight records share one string instead of
	// joining on the serving path.
	devicesLabel string
}

func newEndpoint(name string, lib *runtime.Lib, opts ModelOptions, s *Server) (*endpoint, error) {
	e := &endpoint{
		name:       name,
		lib:        lib,
		opts:       opts,
		server:     s,
		queue:      make(chan *request, opts.QueueDepth),
		pool:       make(chan *runtime.GraphModule, opts.Pool),
		stats:      newStatsCollector(s.metrics, name),
		drainCh:    make(chan struct{}),
		inputNames: runtime.NewGraphModule(lib).InputNames(),
	}
	labels := make([]string, len(opts.Devices))
	for i, d := range opts.Devices {
		labels[i] = d.String()
	}
	e.devicesLabel = strings.Join(labels, ",")
	// Build the pool eagerly and pay the plan lowering + arena bind up
	// front: the first request should not eat a cold start. Lowering runs
	// once per Lib (cached); each instance binds its own arena.
	for i := 0; i < opts.Pool; i++ {
		gm := runtime.NewGraphModule(lib)
		gm.SetExecutor(opts.Executor)
		e.pool <- gm
	}
	return e, nil
}

func (e *endpoint) startWorkers() {
	e.wg.Add(e.opts.Pool)
	for i := 0; i < e.opts.Pool; i++ {
		tk := e.server.tracer.NewTrack(fmt.Sprintf("%s/worker%d", e.name, i))
		go e.worker(tk)
	}
}

// checkInputs validates a request's binding against the declared input set
// before admission (shape/dtype mismatches are caught later by Run and
// answered per-request).
func (e *endpoint) checkInputs(inputs map[string]*tensor.Tensor) error {
	if len(inputs) != len(e.inputNames) {
		return fmt.Errorf("serve: model %q wants inputs %v, got %d binding(s)",
			e.name, e.inputNames, len(inputs))
	}
	for _, n := range e.inputNames {
		if inputs[n] == nil {
			return fmt.Errorf("serve: model %q: input %q not bound (want %v)",
				e.name, n, e.inputNames)
		}
	}
	return nil
}
