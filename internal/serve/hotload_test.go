package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"

	"repro/internal/models"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// TestAliasHotSwap pins the registry's cutover primitive: requests submitted
// under a public alias are served by whichever endpoint the alias targets at
// admission time, the switch is atomic (no unroutable window), and each
// response carries the version of the endpoint that actually executed it.
func TestAliasHotSwap(t *testing.T) {
	lib1, lib2 := emotionLib(t), emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion@v1", lib1, ModelOptions{Version: "v1", Pool: 1, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAlias("emotion", "emotion@v1"); err != nil {
		t.Fatal(err)
	}
	inName := runtime.NewGraphModule(lib1).InputNames()[0]
	submit := func() *Result {
		t.Helper()
		res, err := s.Submit(context.Background(), "emotion",
			map[string]*tensor.Tensor{inName: models.RandomInput(lib1.Module, 3)})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if res := submit(); res.Version != "v1" {
		t.Fatalf("version %q, want v1", res.Version)
	}

	if err := s.Register("emotion@v2", lib2, ModelOptions{Version: "v2", Pool: 1, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAlias("emotion", "emotion@v2"); err != nil {
		t.Fatal(err)
	}
	if res := submit(); res.Version != "v2" {
		t.Fatalf("after cutover: version %q, want v2", res.Version)
	}

	// Rollback is the same pointer swap in the other direction.
	if err := s.SetAlias("emotion", "emotion@v1"); err != nil {
		t.Fatal(err)
	}
	if res := submit(); res.Version != "v1" {
		t.Fatalf("after rollback: version %q, want v1", res.Version)
	}

	// Guard rails: an alias cannot shadow an endpoint, cannot dangle, and an
	// endpoint still serving an alias cannot be drained.
	if err := s.SetAlias("emotion@v2", "emotion@v1"); err == nil {
		t.Error("alias colliding with an endpoint name must fail")
	}
	if err := s.SetAlias("other", "missing"); err == nil {
		t.Error("alias to a missing endpoint must fail")
	}
	if err := s.DrainEndpoint("emotion@v1"); err == nil {
		t.Error("draining the alias target must fail")
	}
}

// TestDrainEndpointServesAdmittedOnly mirrors TestDrainRejectsNewServesAdmitted
// at per-endpoint granularity: draining one endpoint answers everything it
// already admitted, rejects new submissions to it with ErrDraining, and
// leaves sibling endpoints serving.
func TestDrainEndpointServesAdmittedOnly(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("old", lib, ModelOptions{Pool: 2, QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("new", lib, ModelOptions{Pool: 1, QueueDepth: 8}); err != nil {
		t.Fatal(err)
	}
	inName := runtime.NewGraphModule(lib).InputNames()[0]

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			_, err := s.Submit(context.Background(), "old",
				map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, seed)})
			errs <- err
		}(uint64(i + 1))
	}
	wg.Wait()
	if err := s.DrainEndpoint("old"); err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("pre-drain request failed: %v", err)
		}
	}

	if _, err := s.Submit(context.Background(), "old",
		map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, 9)}); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("drained endpoint: got %v, want ErrUnknownModel", err)
	}
	if _, err := s.Submit(context.Background(), "new",
		map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, 9)}); err != nil {
		t.Errorf("sibling endpoint after drain: %v", err)
	}
	if s.Draining() {
		t.Error("per-endpoint drain must not mark the server draining")
	}
}

// TestDrainResponsesCarryRetryAfter rides alongside
// TestDrainRejectsNewServesAdmitted: the HTTP surface of the same drain
// rejection must carry a Retry-After header so router retry/backoff is
// principled rather than immediate.
func TestDrainResponsesCarryRetryAfter(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Drain()

	resp, _ := postJSON(t, ts.URL+"/v1/infer", InferRequest{Model: "emotion", Seed: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained infer status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != strconv.Itoa(DrainRetryAfterSeconds) {
		t.Errorf("Retry-After = %q, want %q", got, strconv.Itoa(DrainRetryAfterSeconds))
	}

	resp, _ = postJSON(t, ts.URL+"/v1/showcase", ShowcaseRequest{Frames: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained showcase status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got == "" {
		t.Error("drained showcase response missing Retry-After")
	}
}

// TestHealthzKeysPinned pins the /healthz JSON contract the fleet router's
// health checker consumes: top-level status/draining/models/build/endpoints
// (+ aliases when routing is versioned), build.go_version, and per-endpoint
// name/version/draining/pool/devices.
func TestHealthzKeysPinned(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion@v1", lib, ModelOptions{Version: "v1", Pool: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.SetAlias("emotion", "emotion@v1"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(hr.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"status", "draining", "models", "build", "endpoints", "aliases"} {
		if _, ok := raw[key]; !ok {
			t.Errorf("healthz missing pinned key %q", key)
		}
	}
	var h HealthResponse
	if err := json.Unmarshal(mustMarshal(t, raw), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining {
		t.Errorf("bad health head: %+v", h)
	}
	if h.Build.GoVersion == "" {
		t.Error("build.go_version empty")
	}
	wantModels := map[string]bool{"emotion": true, "emotion@v1": true}
	for _, m := range h.Models {
		delete(wantModels, m)
	}
	if len(wantModels) != 0 {
		t.Errorf("models %v missing %v", h.Models, wantModels)
	}
	if len(h.Endpoints) != 1 {
		t.Fatalf("endpoints %+v, want 1", h.Endpoints)
	}
	ep := h.Endpoints[0]
	if ep.Name != "emotion@v1" || ep.Version != "v1" || ep.Draining || ep.Pool != 1 || len(ep.Devices) == 0 {
		t.Errorf("bad endpoint row: %+v", ep)
	}
	if h.Aliases["emotion"] != "emotion@v1" {
		t.Errorf("aliases %v, want emotion->emotion@v1", h.Aliases)
	}

	// Per-endpoint JSON keys, pinned against accidental renames.
	var rows []map[string]json.RawMessage
	if err := json.Unmarshal(raw["endpoints"], &rows); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "version", "draining", "pool", "devices"} {
		if _, ok := rows[0][key]; !ok {
			t.Errorf("endpoint row missing pinned key %q", key)
		}
	}
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
