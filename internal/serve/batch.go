package serve

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// worker is one pooled instance's serving loop: dequeue the head request,
// gather a micro-batch behind it, execute the batch under the model's
// exclusive device reservation, and fan results back out. On drain the
// worker finishes whatever is still queued (answering expired requests with
// their deadline error) and exits. Every worker records its serving phases
// (coalesce, lock-wait, execute, per-request queue-wait) as wall-clock spans
// on its own tracer track, exported by /tracez.
func (e *endpoint) worker(tk *obs.Track) {
	defer e.wg.Done()
	for {
		select {
		case req := <-e.queue:
			e.serveOne(req, tk)
		case <-e.server.drainCh:
			e.drainQueue(tk)
			return
		case <-e.drainCh:
			e.drainQueue(tk)
			return
		}
	}
}

// drainQueue serves whatever admission let in before drain began, then
// returns. Admission stops (under the server mutex) before either drain
// channel closes, so an empty receive here means the queue is empty for good.
func (e *endpoint) drainQueue(tk *obs.Track) {
	for {
		select {
		case req := <-e.queue:
			e.serveOne(req, tk)
		default:
			return
		}
	}
}

// serveOne gathers a batch behind the head request and runs it, tracing the
// coalesce window.
func (e *endpoint) serveOne(first *request, tk *obs.Track) {
	gatherStart := time.Now()
	batch := e.gather(first)
	args := append(traceArgs(batch), obs.A("batch", len(batch)))
	tk.Emit("coalesce:"+e.name, "serve", gatherStart, time.Since(gatherStart), args...)
	e.runBatch(batch, tk)
}

// traceArgs stamps a batch-level span with every member request's trace ID
// (one Arg per distinct traced request), so /tracez?id= finds the coalesce /
// lock-wait / execute phases of any request that rode in the batch.
func traceArgs(batch []*request) []obs.Arg {
	var args []obs.Arg
	for _, r := range batch {
		if r.trace.Valid() {
			args = append(args, obs.A(obs.TraceArg, r.trace.TraceID))
		}
	}
	return args
}

// record writes one request's flight-record entry and feeds the SLO window.
// Called once per request on every outcome path (ok / failed / expired).
func (e *endpoint) record(r *request, status string, batchSize int, queue, exec, total time.Duration) {
	e.server.flight.Load().Record(obs.FlightRecord{
		UnixMicro: time.Now().UnixMicro(),
		TraceID:   r.trace.TraceID,
		Model:     e.name,
		Worker:    e.server.WorkerKey(),
		Status:    status,
		BatchSize: batchSize,
		QueueMs:   float64(queue) / float64(time.Millisecond),
		ExecMs:    float64(exec) / float64(time.Millisecond),
		TotalMs:   float64(total) / float64(time.Millisecond),
		Devices:   e.devicesLabel,
	})
	e.server.slo.Observe(e.name, float64(total)/float64(time.Millisecond), status != "ok")
}

// gather coalesces same-model requests behind first: it holds the batch open
// for at most BatchWindow, closing early when MaxBatch is reached or drain
// begins. With batching disabled it returns immediately.
func (e *endpoint) gather(first *request) []*request {
	batch := []*request{first}
	if e.opts.MaxBatch <= 1 {
		return batch
	}
	timer := time.NewTimer(e.opts.BatchWindow)
	defer timer.Stop()
	for len(batch) < e.opts.MaxBatch {
		select {
		case req := <-e.queue:
			batch = append(batch, req)
		case <-timer.C:
			return batch
		case <-e.server.drainCh:
			// Don't hold the window open during shutdown; take what is
			// already queued and go.
			return e.gatherRemaining(batch)
		case <-e.drainCh:
			return e.gatherRemaining(batch)
		}
	}
	return batch
}

// gatherRemaining tops a closing batch up from whatever is already queued,
// without holding the coalesce window open.
func (e *endpoint) gatherRemaining(batch []*request) []*request {
	for len(batch) < e.opts.MaxBatch {
		select {
		case req := <-e.queue:
			batch = append(batch, req)
		default:
			return batch
		}
	}
	return batch
}

// runBatch executes one coalesced batch on a pooled module under the model's
// exclusive device locks. Requests whose context expired while queued (or
// while the batch window was open) are answered with their context error
// without executing.
func (e *endpoint) runBatch(batch []*request, tk *obs.Track) {
	live := make([]*request, 0, len(batch))
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			e.stats.expired()
			wait := time.Since(r.enqueued)
			e.record(r, "expired", len(batch), wait, 0, wait)
			r.respond(nil, fmt.Errorf("serve: %s: expired after %v in queue: %w",
				e.name, wait.Round(time.Microsecond), err))
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	if e.opts.Gate != nil {
		e.opts.Gate(len(live))
	}

	// Checkout order is fixed (pool, then device locks) across all workers
	// and endpoints, so the two acquisitions cannot deadlock.
	lockStart := time.Now()
	gm := <-e.pool
	e.server.locks.Lock(e.opts.Devices)
	tk.Emit("lock-wait:"+e.name, "serve", lockStart, time.Since(lockStart), traceArgs(live)...)
	defer func() {
		e.server.locks.Unlock(e.opts.Devices)
		e.pool <- gm
	}()

	runStart := time.Now()
	var batchSim soc.Seconds
	for _, r := range live {
		// The batch window may have outlived a tight deadline.
		if err := r.ctx.Err(); err != nil {
			e.stats.expired()
			wait := time.Since(r.enqueued)
			e.record(r, "expired", len(live), wait, 0, wait)
			r.respond(nil, fmt.Errorf("serve: %s: expired before execution: %w", e.name, err))
			continue
		}
		queueWait := runStart.Sub(r.enqueued)
		if r.trace.Valid() {
			tk.Emit("queue-wait:"+e.name, "serve", r.enqueued, queueWait,
				obs.A(obs.TraceArg, r.trace.TraceID))
		} else {
			tk.Emit("queue-wait:"+e.name, "serve", r.enqueued, queueWait)
		}
		start := time.Now()
		for name, t := range r.inputs {
			gm.SetInput(name, t)
		}
		if err := gm.Run(); err != nil {
			e.stats.failed()
			e.record(r, "failed", len(live), queueWait, time.Since(start), time.Since(r.enqueued))
			r.respond(nil, fmt.Errorf("serve: %s: %w", e.name, err))
			continue
		}
		outs := make([]*tensor.Tensor, gm.NumOutputs())
		var copyErr error
		for i := range outs {
			if outs[i], copyErr = gm.OutputCopy(i); copyErr != nil {
				break
			}
		}
		if copyErr != nil {
			e.stats.failed()
			e.record(r, "failed", len(live), queueWait, time.Since(start), time.Since(r.enqueued))
			r.respond(nil, fmt.Errorf("serve: %s: %w", e.name, copyErr))
			continue
		}
		sim := gm.LastProfile().Total()
		batchSim += sim
		execWall := time.Since(start)
		e.stats.completed(time.Since(r.enqueued), queueWait, execWall, sim)
		e.record(r, "ok", len(live), queueWait, execWall, time.Since(r.enqueued))
		r.respond(&Result{
			Outputs:   outs,
			Version:   e.opts.Version,
			BatchSize: len(live),
			QueueWait: queueWait,
			Wall:      execWall,
			SimTime:   sim,
		}, nil)
	}
	execArgs := append(traceArgs(live), obs.A("batch", len(live)))
	tk.Emit("execute:"+e.name, "serve", runStart, time.Since(runStart), execArgs...)
	// Account the whole reservation on the shared virtual timeline: the
	// batch occupied its device set exclusively for its summed simulated
	// cost (this is what /statsz reports as per-device busy time).
	e.server.timeline.ScheduleMulti(e.opts.Devices, e.name, 0, batchSim)
	e.stats.batchDone(len(live), time.Since(runStart))
}
