package serve

import (
	"sort"
	"sync"
	"time"

	"repro/internal/soc"
)

// latencyWindow is how many recent end-to-end latencies the quantile
// summary is computed over (a fixed ring, so stats stay O(1) per request).
const latencyWindow = 512

// ModelStats is a point-in-time snapshot of one endpoint's counters.
type ModelStats struct {
	Model string `json:"model"`
	// Admitted counts requests accepted into the queue; Rejected counts
	// ErrOverloaded refusals; Expired counts requests whose deadline passed
	// before execution; Failed counts execution errors.
	Admitted  uint64 `json:"admitted"`
	Completed uint64 `json:"completed"`
	Rejected  uint64 `json:"rejected"`
	Expired   uint64 `json:"expired"`
	Failed    uint64 `json:"failed"`
	// Batches is how many device reservations served the completed
	// requests; MeanBatch = Completed/Batches; MaxBatch is the largest
	// coalesced batch observed.
	Batches   uint64  `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	MaxBatch  int     `json:"max_batch"`
	// SimMs is total simulated device time charged; Latency summarizes
	// recent end-to-end wall-clock latencies (queue + execution).
	SimMs   float64        `json:"sim_ms"`
	Latency LatencySummary `json:"latency"`
}

// LatencySummary reports quantiles over the recent-latency window, in
// milliseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// statsCollector accumulates one endpoint's counters; all methods are
// goroutine-safe.
type statsCollector struct {
	mu        sync.Mutex
	admit     uint64
	complete  uint64
	reject    uint64
	expire    uint64
	fail      uint64
	batches   uint64
	maxBatch  int
	simTotal  soc.Seconds
	sumMs     float64
	maxMs     float64
	ring      [latencyWindow]float64
	ringLen   int
	ringNext  int
	latencies uint64
}

func (c *statsCollector) admitted() {
	c.mu.Lock()
	c.admit++
	c.mu.Unlock()
}

func (c *statsCollector) rejected() {
	c.mu.Lock()
	c.reject++
	c.mu.Unlock()
}

func (c *statsCollector) expired() {
	c.mu.Lock()
	c.expire++
	c.mu.Unlock()
}

func (c *statsCollector) failed() {
	c.mu.Lock()
	c.fail++
	c.mu.Unlock()
}

func (c *statsCollector) completed(latency time.Duration, sim soc.Seconds) {
	ms := float64(latency) / float64(time.Millisecond)
	c.mu.Lock()
	c.complete++
	c.simTotal += sim
	c.latencies++
	c.sumMs += ms
	if ms > c.maxMs {
		c.maxMs = ms
	}
	c.ring[c.ringNext] = ms
	c.ringNext = (c.ringNext + 1) % latencyWindow
	if c.ringLen < latencyWindow {
		c.ringLen++
	}
	c.mu.Unlock()
}

func (c *statsCollector) batchDone(size int, wall time.Duration) {
	c.mu.Lock()
	c.batches++
	if size > c.maxBatch {
		c.maxBatch = size
	}
	c.mu.Unlock()
}

func (c *statsCollector) snapshot(model string) ModelStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := ModelStats{
		Model:     model,
		Admitted:  c.admit,
		Completed: c.complete,
		Rejected:  c.reject,
		Expired:   c.expire,
		Failed:    c.fail,
		Batches:   c.batches,
		MaxBatch:  c.maxBatch,
		SimMs:     c.simTotal.Ms(),
	}
	if c.batches > 0 {
		s.MeanBatch = float64(c.complete) / float64(c.batches)
	}
	s.Latency.Count = c.latencies
	if c.ringLen > 0 {
		s.Latency.MeanMs = c.sumMs / float64(c.latencies)
		s.Latency.MaxMs = c.maxMs
		window := append([]float64(nil), c.ring[:c.ringLen]...)
		sort.Float64s(window)
		s.Latency.P50Ms = quantile(window, 0.50)
		s.Latency.P95Ms = quantile(window, 0.95)
		s.Latency.P99Ms = quantile(window, 0.99)
	}
	return s
}

// quantile reads the q-th quantile from a sorted window (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
