package serve

import (
	"time"

	"repro/internal/obs"
	"repro/internal/soc"
)

// ModelStats is a point-in-time snapshot of one endpoint's counters. All
// fields present before the observability layer keep their JSON names; the
// queue-wait/execution split (QueueWaitMs, ExecMs, QueueWait, Exec) is
// strictly additive.
type ModelStats struct {
	Model string `json:"model"`
	// Version is the endpoint's model revision (empty when unversioned).
	Version string `json:"version,omitempty"`
	// Admitted counts requests accepted into the queue; Rejected counts
	// ErrOverloaded refusals; Expired counts requests whose deadline passed
	// before execution; Failed counts execution errors.
	Admitted  uint64 `json:"admitted"`
	Completed uint64 `json:"completed"`
	Rejected  uint64 `json:"rejected"`
	Expired   uint64 `json:"expired"`
	Failed    uint64 `json:"failed"`
	// Batches is how many device reservations served the completed
	// requests; MeanBatch = Completed/Batches; MaxBatch is the largest
	// coalesced batch observed.
	Batches   uint64  `json:"batches"`
	MeanBatch float64 `json:"mean_batch"`
	MaxBatch  int     `json:"max_batch"`
	// SimMs is total simulated device time charged; Latency summarizes
	// end-to-end wall-clock latencies (queue + execution).
	SimMs   float64        `json:"sim_ms"`
	Latency LatencySummary `json:"latency"`
	// QueueWaitMs and ExecMs split the mean end-to-end latency into its
	// queued and executing parts; QueueWait and Exec carry the full
	// distributions.
	QueueWaitMs float64        `json:"queue_wait_ms"`
	ExecMs      float64        `json:"exec_ms"`
	QueueWait   LatencySummary `json:"queue_wait"`
	Exec        LatencySummary `json:"exec"`
}

// LatencySummary reports a latency distribution in milliseconds. Count, mean,
// and max are exact; the quantiles are interpolated within the fixed
// exponential histogram buckets backing /metricsz.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// latencyBuckets covers 100µs .. ~52s in powers of two — the exponential grid
// every serve latency histogram shares.
func latencyBuckets() []float64 { return obs.ExpBuckets(100e-6, 2, 20) }

// statsCollector accumulates one endpoint's counters on the server's metrics
// registry: the same instruments back both the /statsz JSON snapshot and the
// /metricsz Prometheus exposition. All methods are goroutine-safe (the
// instruments are lock-free).
type statsCollector struct {
	admit    *obs.Counter
	complete *obs.Counter
	reject   *obs.Counter
	expire   *obs.Counter
	fail     *obs.Counter
	batches  *obs.Counter
	sim      *obs.Counter

	lat       *obs.Histogram
	queueWait *obs.Histogram
	exec      *obs.Histogram
	batchSize *obs.Histogram
}

func newStatsCollector(reg *obs.Registry, model string) *statsCollector {
	outcome := func(o string) *obs.Counter {
		return reg.Counter("serve_requests_total",
			"Requests by model and admission outcome.",
			obs.L("model", model, "outcome", o))
	}
	lm := obs.L("model", model)
	return &statsCollector{
		admit:    outcome("admitted"),
		complete: outcome("completed"),
		reject:   outcome("rejected"),
		expire:   outcome("expired"),
		fail:     outcome("failed"),
		batches: reg.Counter("serve_batches_total",
			"Device reservations (micro-batches) executed.", lm),
		sim: reg.Counter("serve_sim_seconds_total",
			"Total simulated device time charged.", lm),
		lat: reg.Histogram("serve_latency_seconds",
			"End-to-end request latency (queue + execution).", lm, latencyBuckets()),
		queueWait: reg.Histogram("serve_queue_wait_seconds",
			"Time from admission to batch execution start.", lm, latencyBuckets()),
		exec: reg.Histogram("serve_exec_seconds",
			"Wall-clock execution time of one request's Run.", lm, latencyBuckets()),
		batchSize: reg.Histogram("serve_batch_size",
			"Coalesced micro-batch sizes.", lm, obs.ExpBuckets(1, 2, 8)),
	}
}

func (c *statsCollector) admitted() { c.admit.Inc() }
func (c *statsCollector) rejected() { c.reject.Inc() }
func (c *statsCollector) expired()  { c.expire.Inc() }
func (c *statsCollector) failed()   { c.fail.Inc() }

func (c *statsCollector) completed(latency, queueWait, exec time.Duration, sim soc.Seconds) {
	c.complete.Inc()
	c.sim.Add(float64(sim))
	c.lat.Observe(latency.Seconds())
	c.queueWait.Observe(queueWait.Seconds())
	c.exec.Observe(exec.Seconds())
}

func (c *statsCollector) batchDone(size int, wall time.Duration) {
	c.batches.Inc()
	c.batchSize.Observe(float64(size))
}

func (c *statsCollector) snapshot(model string) ModelStats {
	s := ModelStats{
		Model:     model,
		Admitted:  uint64(c.admit.Value()),
		Completed: uint64(c.complete.Value()),
		Rejected:  uint64(c.reject.Value()),
		Expired:   uint64(c.expire.Value()),
		Failed:    uint64(c.fail.Value()),
		Batches:   uint64(c.batches.Value()),
		MaxBatch:  int(c.batchSize.Max()),
		SimMs:     soc.Seconds(c.sim.Value()).Ms(),
		Latency:   summarize(c.lat),
		QueueWait: summarize(c.queueWait),
		Exec:      summarize(c.exec),
	}
	if b := c.batches.Value(); b > 0 {
		s.MeanBatch = c.complete.Value() / b
	}
	s.QueueWaitMs = s.QueueWait.MeanMs
	s.ExecMs = s.Exec.MeanMs
	return s
}

// summarize renders one latency histogram (seconds) as a millisecond summary.
func summarize(h *obs.Histogram) LatencySummary {
	const ms = 1e3
	out := LatencySummary{Count: h.Count()}
	if out.Count == 0 {
		return out
	}
	out.MeanMs = h.Mean() * ms
	out.P50Ms = h.Quantile(0.50) * ms
	out.P95Ms = h.Quantile(0.95) * ms
	out.P99Ms = h.Quantile(0.99) * ms
	out.MaxMs = h.Max() * ms
	return out
}
