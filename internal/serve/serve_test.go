package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/models"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// emotionLib builds the lite emotion zoo model on the TVM-only path (fully
// plannable, cheap enough to run many times under -race).
func emotionLib(t testing.TB) *runtime.Lib {
	t.Helper()
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// byocLib builds the lite emotion model through the BYOC flow (external
// NeuroPilot regions → CPU+APU device set).
func byocLib(t testing.TB) *runtime.Lib {
	t.Helper()
	m, err := models.BuildEmotion(models.SizeLite)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := runtime.Build(m, runtime.BuildOptions{OptLevel: 3, UseNIR: true})
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

// referenceOutputs runs one single-threaded inference per seed on a private
// GraphModule and returns detached outputs — the oracle the concurrent
// server must match bitwise.
func referenceOutputs(t testing.TB, lib *runtime.Lib, seeds []uint64) map[uint64][]*tensor.Tensor {
	t.Helper()
	gm := runtime.NewGraphModule(lib)
	name := gm.InputNames()[0]
	ref := map[uint64][]*tensor.Tensor{}
	for _, seed := range seeds {
		gm.SetInput(name, models.RandomInput(lib.Module, seed))
		if err := gm.Run(); err != nil {
			t.Fatal(err)
		}
		outs := make([]*tensor.Tensor, gm.NumOutputs())
		for i := range outs {
			o, err := gm.OutputCopy(i)
			if err != nil {
				t.Fatal(err)
			}
			outs[i] = o
		}
		ref[seed] = outs
	}
	return ref
}

// assertBitwise demands exact equality: same dtype, same shape, max abs
// diff of exactly zero.
func assertBitwise(t *testing.T, what string, got, want []*tensor.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d outputs, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i].DType != want[i].DType || !got[i].Shape.Equal(want[i].Shape) {
			t.Fatalf("%s: output %d type %s%v, want %s%v", what, i,
				got[i].DType, got[i].Shape, want[i].DType, want[i].Shape)
		}
		if d := tensor.MaxAbsDiff(got[i], want[i]); d != 0 {
			t.Fatalf("%s: output %d differs from single-threaded run (max abs diff %g)", what, i, d)
		}
	}
}

// TestConcurrentPoolBitwise is the acceptance test: 8 concurrent clients
// through a 2-instance pool, every response bitwise-identical to a
// single-threaded Run of the same input.
func TestConcurrentPoolBitwise(t *testing.T) {
	lib := emotionLib(t)
	const clients, perClient = 8, 3
	seeds := make([]uint64, 0, clients*perClient)
	for c := 0; c < clients; c++ {
		for j := 0; j < perClient; j++ {
			seeds = append(seeds, uint64(1+c*perClient+j))
		}
	}
	ref := referenceOutputs(t, lib, seeds)

	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 2, QueueDepth: 64}); err != nil {
		t.Fatal(err)
	}
	inName := runtime.NewGraphModule(lib).InputNames()[0]

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for j := 0; j < perClient; j++ {
				seed := uint64(1 + c*perClient + j)
				in := map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, seed)}
				res, err := s.Submit(context.Background(), "emotion", in)
				if err != nil {
					errCh <- fmt.Errorf("client %d seed %d: %w", c, seed, err)
					return
				}
				for i := range res.Outputs {
					if d := tensor.MaxAbsDiff(res.Outputs[i], ref[seed][i]); d != 0 {
						errCh <- fmt.Errorf("client %d seed %d output %d: max abs diff %g", c, seed, i, d)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := s.Stats()[0]
	if st.Completed != clients*perClient {
		t.Errorf("completed %d requests, want %d", st.Completed, clients*perClient)
	}
	if st.Rejected != 0 || st.Expired != 0 || st.Failed != 0 {
		t.Errorf("unexpected failures in stats: %+v", st)
	}
}

// TestDeadlineExpiresInQueue pins admission behavior (b): a request whose
// deadline passes while queued is answered with its context error and never
// executes.
func TestDeadlineExpiresInQueue(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	gateEntered := make(chan struct{}, 8)
	gateRelease := make(chan struct{})
	opts := ModelOptions{
		Pool:       1,
		QueueDepth: 8,
		Gate: func(int) {
			gateEntered <- struct{}{}
			<-gateRelease
		},
	}
	if err := s.Register("emotion", lib, opts); err != nil {
		t.Fatal(err)
	}
	inName := runtime.NewGraphModule(lib).InputNames()[0]
	submit := func(ctx context.Context, seed uint64) (*Result, error) {
		return s.Submit(ctx, "emotion",
			map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, seed)})
	}

	// First request occupies the single worker inside the gate.
	firstDone := make(chan error, 1)
	go func() {
		_, err := submit(context.Background(), 1)
		firstDone <- err
	}()
	<-gateEntered

	// Second request queues behind it with a deadline that expires in queue.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	secondDone := make(chan error, 1)
	go func() {
		_, err := submit(ctx, 2)
		secondDone <- err
	}()
	waitForAdmitted(t, s, 2) // definitely in the queue before the deadline
	<-ctx.Done()             // deadline passed while the request sat in the queue

	close(gateRelease)
	if err := <-firstDone; err != nil {
		t.Fatalf("gated request failed: %v", err)
	}
	err := <-secondDone
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request: got %v, want context.DeadlineExceeded", err)
	}

	st := s.Stats()[0]
	if st.Completed != 1 {
		t.Errorf("completed %d, want 1 (the expired request must not execute)", st.Completed)
	}
	if st.Expired != 1 {
		t.Errorf("expired %d, want 1", st.Expired)
	}
}

// TestOverloadRejected pins admission behavior (c): once the queue is full,
// submissions fail fast with ErrOverloaded instead of blocking.
func TestOverloadRejected(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	gateEntered := make(chan struct{}, 8)
	gateRelease := make(chan struct{})
	opts := ModelOptions{
		Pool:       1,
		QueueDepth: 1,
		Gate: func(int) {
			gateEntered <- struct{}{}
			<-gateRelease
		},
	}
	if err := s.Register("emotion", lib, opts); err != nil {
		t.Fatal(err)
	}
	inName := runtime.NewGraphModule(lib).InputNames()[0]
	submit := func(seed uint64) (*Result, error) {
		return s.Submit(context.Background(), "emotion",
			map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, seed)})
	}

	// Request 1 is dequeued and held at the gate; request 2 fills the queue.
	results := make(chan error, 2)
	go func() { _, err := submit(1); results <- err }()
	<-gateEntered
	go func() { _, err := submit(2); results <- err }()
	waitForAdmitted(t, s, 2)

	// Queue full: request 3 must be rejected immediately.
	start := time.Now()
	_, err := submit(3)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("rejection took %v; must not block", elapsed)
	}

	close(gateRelease)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted request failed: %v", err)
		}
	}
	st := s.Stats()[0]
	if st.Rejected != 1 {
		t.Errorf("rejected %d, want 1", st.Rejected)
	}
	if st.Completed != 2 {
		t.Errorf("completed %d, want 2", st.Completed)
	}
}

// waitForAdmitted polls stats until n requests were admitted (the submit
// goroutines race the observer, but admission counters are monotonic).
func waitForAdmitted(t *testing.T, s *Server, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Stats()[0].Admitted >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d admitted requests", n)
}

// TestBatchingMatchesUnbatched pins the micro-batcher: coalesced requests
// produce per-request outputs identical to unbatched execution.
func TestBatchingMatchesUnbatched(t *testing.T) {
	lib := emotionLib(t)
	const n = 6
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(100 + i)
	}
	ref := referenceOutputs(t, lib, seeds)

	s := NewServer()
	gateEntered := make(chan struct{}, 8)
	gateRelease := make(chan struct{})
	var gateOnce sync.Once
	opts := ModelOptions{
		Pool:        1,
		QueueDepth:  16,
		MaxBatch:    n,
		BatchWindow: 50 * time.Millisecond,
		// The gate holds only the first (primer) batch, so the n test
		// requests pile up in the queue and coalesce into one batch.
		Gate: func(int) {
			gateOnce.Do(func() {
				gateEntered <- struct{}{}
				<-gateRelease
			})
		},
	}
	if err := s.Register("emotion", lib, opts); err != nil {
		t.Fatal(err)
	}
	inName := runtime.NewGraphModule(lib).InputNames()[0]

	primerDone := make(chan error, 1)
	go func() {
		_, err := s.Submit(context.Background(), "emotion",
			map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, 999)})
		primerDone <- err
	}()
	<-gateEntered

	type reply struct {
		seed uint64
		res  *Result
		err  error
	}
	replies := make(chan reply, n)
	for _, seed := range seeds {
		go func(seed uint64) {
			res, err := s.Submit(context.Background(), "emotion",
				map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, seed)})
			replies <- reply{seed, res, err}
		}(seed)
	}
	waitForAdmitted(t, s, n+1)
	close(gateRelease)
	if err := <-primerDone; err != nil {
		t.Fatal(err)
	}

	sawBatch := false
	for i := 0; i < n; i++ {
		r := <-replies
		if r.err != nil {
			t.Fatalf("seed %d: %v", r.seed, r.err)
		}
		assertBitwise(t, fmt.Sprintf("seed %d (batch of %d)", r.seed, r.res.BatchSize),
			r.res.Outputs, ref[r.seed])
		if r.res.BatchSize > 1 {
			sawBatch = true
		}
	}
	if !sawBatch {
		t.Error("no request was served in a coalesced batch")
	}
	st := s.Stats()[0]
	if st.MaxBatch < 2 {
		t.Errorf("max batch %d, want >= 2", st.MaxBatch)
	}
}

// TestDrainRejectsNewServesAdmitted pins graceful shutdown: Drain answers
// everything already admitted and rejects new work with ErrDraining.
func TestDrainRejectsNewServesAdmitted(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 2, QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	inName := runtime.NewGraphModule(lib).InputNames()[0]

	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			_, err := s.Submit(context.Background(), "emotion",
				map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, seed)})
			errs <- err
		}(uint64(i + 1))
	}
	wg.Wait() // all four served before drain begins
	s.Drain()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Errorf("pre-drain request failed: %v", err)
		}
	}

	_, err := s.Submit(context.Background(), "emotion",
		map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, 9)})
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: got %v, want ErrDraining", err)
	}
	if !s.Draining() {
		t.Error("Draining() = false after Drain")
	}
}

// TestDeviceSetsOverlapDisjointSerializeShared sanity-checks the exclusive
// scheduler wiring: a CPU-only endpoint and an APU-only endpoint share no
// locks, while the shared virtual timeline accounts both models' busy time
// on their own devices.
func TestDeviceSetsOverlapDisjointSerializeShared(t *testing.T) {
	s := NewServer()
	cpuLib := emotionLib(t)
	apuLib := emotionLib(t)
	if err := s.Register("cpu-model", cpuLib, ModelOptions{
		Pool: 1, QueueDepth: 8, Devices: []soc.DeviceKind{soc.KindCPU}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("apu-model", apuLib, ModelOptions{
		Pool: 1, QueueDepth: 8, Devices: []soc.DeviceKind{soc.KindAPU}}); err != nil {
		t.Fatal(err)
	}
	inName := runtime.NewGraphModule(cpuLib).InputNames()[0]

	var wg sync.WaitGroup
	for _, model := range []string{"cpu-model", "apu-model"} {
		lib := cpuLib
		if model == "apu-model" {
			lib = apuLib
		}
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(model string, seed uint64) {
				defer wg.Done()
				if _, err := s.Submit(context.Background(), model,
					map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, seed)}); err != nil {
					t.Error(err)
				}
			}(model, uint64(i+1))
		}
	}
	wg.Wait()
	if cpu := s.Timeline().BusyTime(soc.KindCPU); cpu <= 0 {
		t.Errorf("cpu busy time %v, want > 0", cpu)
	}
	if apu := s.Timeline().BusyTime(soc.KindAPU); apu <= 0 {
		t.Errorf("apu busy time %v, want > 0", apu)
	}
}

// TestByocPoolBitwise repeats the concurrency oracle on the BYOC build: the
// pooled CPU+APU path must also match single-threaded execution exactly.
func TestByocPoolBitwise(t *testing.T) {
	lib := byocLib(t)
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	ref := referenceOutputs(t, lib, seeds)
	devs := LibDevices(lib)
	if len(devs) != 2 || devs[0] != soc.KindCPU || devs[1] != soc.KindAPU {
		t.Fatalf("LibDevices = %v, want [cpu apu]", devs)
	}

	s := NewServer()
	if err := s.Register("emotion-byoc", lib, ModelOptions{Pool: 2, QueueDepth: 16}); err != nil {
		t.Fatal(err)
	}
	inName := runtime.NewGraphModule(lib).InputNames()[0]
	var wg sync.WaitGroup
	for _, seed := range seeds {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			res, err := s.Submit(context.Background(), "emotion-byoc",
				map[string]*tensor.Tensor{inName: models.RandomInput(lib.Module, seed)})
			if err != nil {
				t.Error(err)
				return
			}
			for i := range res.Outputs {
				if d := tensor.MaxAbsDiff(res.Outputs[i], ref[seed][i]); d != 0 {
					t.Errorf("seed %d output %d: max abs diff %g", seed, i, d)
				}
			}
		}(seed)
	}
	wg.Wait()
}

// TestSubmitValidatesBinding pins admission-time input validation (partial
// bindings would silently reuse a pooled module's previous inputs).
func TestSubmitValidatesBinding(t *testing.T) {
	lib := emotionLib(t)
	s := NewServer()
	if err := s.Register("emotion", lib, ModelOptions{Pool: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(context.Background(), "emotion", nil); err == nil {
		t.Error("empty binding accepted")
	}
	if _, err := s.Submit(context.Background(), "emotion",
		map[string]*tensor.Tensor{"nope": models.RandomInput(lib.Module, 1)}); err == nil {
		t.Error("misnamed binding accepted")
	}
	if _, err := s.Submit(context.Background(), "missing", nil); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown model: got %v, want ErrUnknownModel", err)
	}
}
