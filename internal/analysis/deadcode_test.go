package analysis

import (
	"testing"

	"repro/internal/relay"
	"repro/internal/tensor"
)

func TestDeadCodeClean(t *testing.T) {
	a := relay.NewVar("a", relay.TType(tensor.Float32, 4))
	b := relay.NewVar("b", relay.TType(tensor.Float32, 4))
	sum := relay.NewCall(relay.GetOp("add"), []relay.Expr{a, b}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{a, b}, sum))
	if res := DeadCode(m); len(res.Diags) != 0 {
		t.Fatalf("clean module flagged: %v", res.Diags)
	}
}

func TestDeadParam(t *testing.T) {
	a := relay.NewVar("a", relay.TType(tensor.Float32, 4))
	unused := relay.NewVar("unused", relay.TType(tensor.Float32, 4))
	body := relay.NewCall(relay.OpReLU, []relay.Expr{a}, nil)
	m := relay.NewModule(relay.NewFunc([]*relay.Var{a, unused}, body))
	res := DeadCode(m)
	if !res.Has("dead-param") {
		t.Fatalf("unused parameter not flagged: %v", res.Diags)
	}
	if !res.OK() {
		t.Errorf("dead-param must be warning severity: %v", res.Errors())
	}
}

func TestDeadFunction(t *testing.T) {
	a := relay.NewVar("a", relay.TType(tensor.Float32, 4))
	m := relay.NewModule(relay.NewFunc([]*relay.Var{a},
		relay.NewCall(relay.OpReLU, []relay.Expr{a}, nil)))

	// A referenced region: the same *Function object inlined in main would
	// be reachable; this one is only registered by name.
	p := relay.NewVar("p", relay.TType(tensor.Float32, 4))
	orphan := relay.NewFunc([]*relay.Var{p}, relay.NewCall(relay.OpTanh, []relay.Expr{p}, nil))
	if err := m.Add("nir_orphan", orphan); err != nil {
		t.Fatal(err)
	}
	res := DeadCode(m)
	if !res.Has("dead-function") {
		t.Fatalf("orphaned module function not flagged: %v", res.Diags)
	}
}

func TestReferencedRegionNotDead(t *testing.T) {
	// The partitioner's shape: the region function is both a module entry
	// and the callee object inside main.
	p := relay.NewVar("p", relay.TType(tensor.Float32, 4))
	region := relay.NewFunc([]*relay.Var{p}, relay.NewCall(relay.OpReLU, []relay.Expr{p}, nil)).
		WithAttr(relay.FnAttrCompiler, "nir").
		WithAttr(relay.FnAttrGlobalSymbol, "nir_0")

	a := relay.NewVar("a", relay.TType(tensor.Float32, 4))
	m := relay.NewModule(relay.NewFunc([]*relay.Var{a}, relay.NewFnCall(region, []relay.Expr{a})))
	if err := m.Add("nir_0", region); err != nil {
		t.Fatal(err)
	}
	if res := DeadCode(m); res.Has("dead-function") {
		t.Fatalf("referenced region flagged as dead: %v", res.Diags)
	}
}
