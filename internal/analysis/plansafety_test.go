package analysis

import (
	"testing"

	"repro/internal/tensor"
)

// chainView builds a known-good 4-node plan with storage reuse:
//
//	n0: op a   args[in]      outs[2] storage 0   level 0
//	n1: op b   args[2]       outs[3] storage 1   level 1
//	n2: op c   args[3]       outs[4] storage 0   level 2  (reuse: slot 2
//	    died at level 1, two levels before this definition)
//	n3: op d   args[4,const] outs[5] storage 2   level 3  (graph output)
func chainView() *PlanView {
	return &PlanView{
		Nodes: []PlanNode{
			{ID: 0, Kind: PlanNodeOp, Label: "a", Args: []int{0}, Outs: []int{2}},
			{ID: 1, Kind: PlanNodeOp, Label: "b", Args: []int{2}, Outs: []int{3}},
			{ID: 2, Kind: PlanNodeOp, Label: "c", Args: []int{3}, Outs: []int{4}},
			{ID: 3, Kind: PlanNodeOp, Label: "d", Args: []int{4, 1}, Outs: []int{5}},
		},
		Slots: []PlanSlot{
			{DType: tensor.Float32, Elems: 16, Storage: -1, Producer: -1, IsInput: true},
			{DType: tensor.Float32, Elems: 16, Storage: -1, Producer: -1, IsConst: true},
			{DType: tensor.Float32, Elems: 16, Storage: 0, Producer: 0},
			{DType: tensor.Float32, Elems: 16, Storage: 1, Producer: 1},
			{DType: tensor.Float32, Elems: 16, Storage: 0, Producer: 2},
			{DType: tensor.Float32, Elems: 16, Storage: 2, Producer: 3, IsOutput: true},
		},
		Storages: []PlanStorage{
			{DType: tensor.Float32, Elems: 16},
			{DType: tensor.Float32, Elems: 16},
			{DType: tensor.Float32, Elems: 16},
		},
		Params:  []int{0},
		Outputs: []int{5},
	}
}

func TestPlanSafetyCleanView(t *testing.T) {
	res := PlanSafety(chainView())
	if !res.OK() {
		t.Fatalf("clean plan rejected:\n%v", res.Diags)
	}
	if len(res.Diags) != 0 {
		t.Fatalf("clean plan produced warnings: %v", res.Diags)
	}
}

// TestPlanSafetyMutations corrupts the clean plan one invariant at a time
// and asserts the checker names the violated check.
func TestPlanSafetyMutations(t *testing.T) {
	cases := []struct {
		name   string
		check  string
		mutate func(v *PlanView)
	}{
		{
			"arg slot out of range", "plan-slot-range",
			func(v *PlanView) { v.Nodes[1].Args[0] = 99 },
		},
		{
			"storage id out of range", "plan-slot-range",
			func(v *PlanView) { v.Slots[3].Storage = 7 },
		},
		{
			"read of a later node's result", "plan-topo-order",
			func(v *PlanView) { v.Nodes[0].Args = []int{3} },
		},
		{
			"double write", "plan-single-def",
			func(v *PlanView) { v.Nodes[1].Outs = append(v.Nodes[1].Outs, 4) },
		},
		{
			"read of an undefined slot", "plan-read-undef",
			func(v *PlanView) { v.Slots[0].IsInput = false },
		},
		{
			"slot/storage shape mismatch", "plan-storage-shape",
			func(v *PlanView) { v.Storages[1].Elems = 8 },
		},
		{
			// Slots 3 (live levels [1,2]) and 4 (defined level 2) collide
			// when slot 4 is rehomed onto storage 1 — the overlap case.
			"overlapping lifetimes on one storage", "plan-storage-alias",
			func(v *PlanView) { v.Slots[4].Storage = 1 },
		},
		{
			// Use-after-release: a late node re-reads slot 2 at level 3,
			// stretching its true liveness over slot 4's definition at
			// level 2 — the recorded reuse of storage 0 becomes a race.
			"use after release", "plan-storage-alias",
			func(v *PlanView) { v.Nodes[3].Args = append(v.Nodes[3].Args, 2) },
		},
		{
			"graph output on shared storage", "plan-output-alias",
			func(v *PlanView) { v.Slots[5].Storage = 1 },
		},
		{
			"op result without storage", "plan-missing-storage",
			func(v *PlanView) { v.Slots[3].Storage = -1 },
		},
		{
			"external result on the arena", "plan-external-arena",
			func(v *PlanView) { v.Nodes[2].Kind = PlanNodeExternal },
		},
		{
			"dead node", "plan-dead-node",
			func(v *PlanView) {
				// Detach node 1/2's chain from the output: node 3 reads the
				// input directly instead of slot 4.
				v.Nodes[3].Args = []int{0, 1}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := chainView()
			tc.mutate(v)
			res := PlanSafety(v)
			if !res.Has(tc.check) {
				t.Fatalf("mutation not caught; want %s, got:\n%v", tc.check, res.Diags)
			}
		})
	}
}

// TestPlanSafetySubPlan nests the chain as a primitive's sub-plan and
// checks that corruption inside it is still found, with a prefixed Where.
func TestPlanSafetySubPlan(t *testing.T) {
	sub := chainView()
	sub.Slots[4].Storage = 1 // overlap inside the sub-plan
	v := &PlanView{
		Nodes: []PlanNode{
			{ID: 0, Kind: PlanNodePrimitive, Label: "fused", Args: []int{0}, Outs: []int{1}, Sub: sub},
		},
		Slots: []PlanSlot{
			{DType: tensor.Float32, Elems: 16, Storage: -1, Producer: -1, IsInput: true},
			{DType: tensor.Float32, Elems: 16, Storage: 0, Producer: 0, IsOutput: true},
		},
		Storages: []PlanStorage{{DType: tensor.Float32, Elems: 16}},
		Params:   []int{0},
		Outputs:  []int{1},
	}
	res := PlanSafety(v)
	if !res.Has("plan-storage-alias") {
		t.Fatalf("sub-plan corruption not caught: %v", res.Diags)
	}
	found := false
	for _, d := range res.Diags {
		if d.Check == "plan-storage-alias" && len(d.Where) > 0 && d.Where[:4] == "node" {
			found = true
		}
	}
	if !found {
		t.Errorf("sub-plan diagnostic lacks the nesting prefix: %v", res.Diags)
	}
}

// TestPlanSafetyExternalOutputs checks the two halves of the ownership
// contract on a plan with an external region.
func TestPlanSafetyExternalOutputs(t *testing.T) {
	v := &PlanView{
		Nodes: []PlanNode{
			{ID: 0, Kind: PlanNodeExternal, Label: "nir_0", Args: []int{0}, Outs: []int{1}},
			{ID: 1, Kind: PlanNodeOp, Label: "softmax", Args: []int{1}, Outs: []int{2}},
		},
		Slots: []PlanSlot{
			{DType: tensor.UInt8, Elems: 4, Storage: -1, Producer: -1, IsInput: true},
			{DType: tensor.UInt8, Elems: 4, Storage: -1, Producer: 0},
			{DType: tensor.Float32, Elems: 4, Storage: 0, Producer: 1, IsOutput: true},
		},
		Storages: []PlanStorage{{DType: tensor.Float32, Elems: 4}},
		Params:   []int{0},
		Outputs:  []int{2},
	}
	if res := PlanSafety(v); !res.OK() {
		t.Fatalf("clean external plan rejected: %v", res.Diags)
	}
}
