// Package analysis is the dataflow static-analysis framework of the stack:
// a reusable forward/backward fixpoint engine over directed graphs
// (dataflow.go) with four concrete analyses layered on top, all reporting
// through internal/verify's structured diagnostics so `npc -analyze` reads
// exactly like `-verify` and `-lint`.
//
// Where internal/verify checks *well-formedness* (every index in range,
// every type consistent), this package proves *dataflow* properties — the
// safety net the ROADMAP's aggressive-graph-optimization and autotuning
// items need before searched rewrites and placements are let loose:
//
//   - PlanSafety (plansafety.go): an independent interval/aliasing checker
//     over runtime.ExecPlan exports. It recomputes wavefront levels and
//     value liveness from the node list alone — trusting nothing the memory
//     planner recorded — and proves that no two simultaneously-live values
//     share arena storage, that every dispatch reads only defined, live
//     slots, and that the GraphModule.OutputCopy aliasing contract holds
//     (graph outputs on dedicated storage, external-region results owned by
//     the Neuron runtime, never the arena).
//
//   - QuantRanges (quantrange.go): forward value-range propagation through
//     QNN modules. Every expression gets a conservative real-domain
//     interval; qnn.quantize/requantize boundaries are then audited for
//     degenerate scales, out-of-domain zero points, ranges that saturate
//     the uint8/int8 domain, and int32 accumulators that can overflow.
//
//   - DeviceLegality (device.go): per-operation device-placement audit over
//     a compiled NeuroPilot region. Beyond what neuron.CheckPlan enforces
//     structurally, it propagates producer devices through the operand
//     table and flags operations that consume values their Execution
//     Planner device cannot legally receive (quantized tensors on the GPU
//     delegate, direct APU<->GPU hand-offs that real hardware must stage
//     through the host).
//
//   - DeadCode (deadcode.go): unused-value detection over relay modules
//     (never-read parameters, unreferenced region functions) and — via
//     PlanSafety's backward needed-ness pass — plan nodes whose results no
//     output depends on.
//
// The package sits between internal/verify (which it reports through) and
// internal/runtime (which exports plan views to it): it imports relay,
// neuron, soc, tensor and verify, never runtime, so the runtime can run
// PlanSafety on every plan it builds without an import cycle.
//
// The sibling package analysis/npvet is the Go-source half of the same
// idea: custom go/ast analyzers enforcing repo invariants (hot-path
// allocation freedom, obs span pairing, device-lock discipline) that stock
// go vet cannot express. `make check` runs both.
package analysis
