package analysis

import (
	"fmt"

	"repro/internal/neuron"
	"repro/internal/soc"
	"repro/internal/verify"
)

// Device-transfer legality: an audit of a compiled NeuroPilot region's
// device plan. neuron.CheckPlan enforces the structural half (one enabled,
// supporting device per operation); this analysis adds the dataflow half —
// a linear forward scan that tracks which device's memory holds each
// operand, exactly as the Execution Planner and Estimate do, and flags
// placements that are legal per-operation but illegal per-value:
//
//	device-plan-shape       (error) plan length disagrees with the
//	                        operation list — nothing else is checkable
//	device-not-enabled      (error) an operation placed on a device outside
//	                        the enabled set
//	device-unsupported-op   (error) an operation placed on a device whose
//	                        supported-op set excludes it
//	device-gpu-quantized    (error) quantized work placed on the GPU
//	                        delegate, which has no integer pipeline — the
//	                        planner never does this, so seeing it means the
//	                        plan was edited or deserialized from a bad
//	                        artifact
//	device-indirect-transfer (warning) a value produced on the APU consumed
//	                        directly on the GPU or vice versa; the hardware
//	                        has no such link, the value stages through host
//	                        memory and pays the DMA twice
func DeviceLegality(region string, cm *neuron.CompiledModel) *verify.Result {
	res := &verify.Result{}
	errorf := func(check, where, format string, a ...any) {
		res.Diags = append(res.Diags, verify.Diagnostic{
			Sev: verify.SevError, Check: check, Where: region + ": " + where, Msg: fmt.Sprintf(format, a...),
		})
	}
	warnf := func(check, where, format string, a ...any) {
		res.Diags = append(res.Diags, verify.Diagnostic{
			Sev: verify.SevWarning, Check: check, Where: region + ": " + where, Msg: fmt.Sprintf(format, a...),
		})
	}

	m := cm.Model
	if len(cm.Plan) != len(m.Operations) {
		errorf("device-plan-shape", "plan", "plan assigns %d operations, model has %d", len(cm.Plan), len(m.Operations))
		return res
	}
	enabled := map[soc.DeviceKind]bool{}
	for _, d := range cm.Devices {
		enabled[d] = true
	}

	// producer[i] is the device whose memory holds operand i right now;
	// model inputs and constants start in host memory.
	producer := make([]soc.DeviceKind, len(m.Operands))
	for i := range producer {
		producer[i] = soc.KindCPU
	}
	for oi, op := range m.Operations {
		dev := cm.Plan[oi]
		where := fmt.Sprintf("operation %d (%s)", oi, op.Code)
		if !enabled[dev] {
			errorf("device-not-enabled", where, "placed on %s, enabled set is %v", dev, cm.Devices)
		}
		if !neuron.SupportedOn(op.Code, dev) {
			errorf("device-unsupported-op", where, "placed on %s, which does not support %s", dev, op.Code)
		}
		if dev == soc.KindGPU {
			for _, in := range op.Inputs {
				if in >= 0 && in < len(m.Operands) && m.Operands[in].Type.DType.IsQuantized() {
					errorf("device-gpu-quantized", where,
						"consumes quantized operand %d (%s) on the GPU delegate, which has no integer pipeline",
						in, m.Operands[in].Type)
					break
				}
			}
		}
		for _, in := range op.Inputs {
			if in < 0 || in >= len(m.Operands) || m.Operands[in].IsConst() {
				continue // weights are preloaded on every device at compile time
			}
			from := producer[in]
			if (from == soc.KindAPU && dev == soc.KindGPU) || (from == soc.KindGPU && dev == soc.KindAPU) {
				warnf("device-indirect-transfer", where,
					"consumes operand %d produced on %s; there is no %s→%s link, the value stages through host memory",
					in, from, from, dev)
			}
		}
		for _, out := range op.Outputs {
			if out >= 0 && out < len(m.Operands) {
				producer[out] = dev
			}
		}
	}
	return res
}
