package npvet

import (
	"go/ast"
	"go/token"
	"strings"
)

// HotPath flags allocation-introducing constructs inside functions whose
// doc comment carries the //np:hotpath marker — the per-inference code the
// planned executor runs thousands of times per second, where a stray append
// or closure turns into GC pressure that shows up as tail latency in the
// serving benchmarks. The check is syntactic (no escape analysis): a
// construct that is provably fine gets an //np:alloc-ok waiver on its line,
// which keeps every exception visible and greppable.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "report allocation-introducing constructs in //np:hotpath functions",
	Run:  runHotPath,
}

func runHotPath(p *Pass) {
	p.funcDecls(func(_ *ast.File, fd *ast.FuncDecl) {
		// Scan the raw comment list: //np:hotpath is a directive comment,
		// which CommentGroup.Text() deliberately strips.
		marked := false
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if strings.Contains(c.Text, "np:hotpath") {
					marked = true
					break
				}
			}
		}
		if !marked {
			return
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if id, ok := x.Fun.(*ast.Ident); ok {
					switch id.Name {
					case "make", "new", "append":
						if !p.Waived(x.Pos()) {
							p.Reportf(x.Pos(), "hot path %s calls %s, which allocates", fd.Name.Name, id.Name)
						}
					}
				}
			case *ast.FuncLit:
				if !p.Waived(x.Pos()) {
					p.Reportf(x.Pos(), "hot path %s builds a closure, which allocates", fd.Name.Name)
				}
			case *ast.GoStmt:
				if !p.Waived(x.Pos()) {
					p.Reportf(x.Pos(), "hot path %s spawns a goroutine", fd.Name.Name)
				}
			case *ast.CompositeLit:
				switch t := x.Type.(type) {
				case *ast.ArrayType:
					if t.Len == nil && !p.Waived(x.Pos()) { // []T{...}; [N]T{...} stays on the stack
						p.Reportf(x.Pos(), "hot path %s builds a slice literal, which allocates", fd.Name.Name)
					}
				case *ast.MapType:
					if !p.Waived(x.Pos()) {
						p.Reportf(x.Pos(), "hot path %s builds a map literal, which allocates", fd.Name.Name)
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if _, ok := x.X.(*ast.CompositeLit); ok && !p.Waived(x.Pos()) {
						p.Reportf(x.Pos(), "hot path %s takes the address of a composite literal, which escapes", fd.Name.Name)
					}
				}
			}
			return true
		})
	})
}
