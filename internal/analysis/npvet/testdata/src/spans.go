package fixture

type mark struct{ i int }

type track struct{}

func (*track) Begin(name, cat string) mark { return mark{} }
func (*track) End(m mark)                  {}

func spanLeak(tk *track) {
	m := tk.Begin("work", "cat") // line 11: never ended
	_ = m
}

func spanDiscard(tk *track) {
	_ = tk.Begin("work", "cat") // line 16: discarded
	tk.Begin("work", "cat")     // line 17: dropped
}

func spanOK(tk *track) {
	m := tk.Begin("work", "cat")
	defer func() { tk.End(m) }() // deferred closure still pairs
	n := tk.Begin("inner", "cat")
	tk.End(n)
}
