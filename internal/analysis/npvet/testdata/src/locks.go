package fixture

import "sync"

type kind int

type devLocks struct{}

func (*devLocks) Lock(devs []kind)   {}
func (*devLocks) Unlock(devs []kind) {}

func lockNested(l *devLocks, a, b []kind) {
	l.Lock(a)
	l.Lock(b) // line 14: nested acquisition
	l.Unlock(b)
	l.Unlock(a)
}

func lockLeak(l *devLocks, a []kind) {
	l.Lock(a) // line 20: never released
}

func lockStray(l *devLocks, a []kind) {
	l.Unlock(a) // line 24: never acquired
}

func lockOK(l *devLocks, a, b []kind) {
	l.Lock(a)
	defer l.Unlock(a)
}

func lockSequentialOK(l *devLocks, a, b []kind) {
	l.Lock(a)
	l.Unlock(a)
	l.Lock(b)
	l.Unlock(b)
}

// sync.Mutex's zero-argument Lock/Unlock never trips the analyzer, nested
// or not.
func mutexOK(mu, inner *sync.Mutex) {
	mu.Lock()
	inner.Lock()
	inner.Unlock()
	mu.Unlock()
}
