// Package fixture seeds one violation per construct the analyzers must
// catch; npvet_test asserts the exact (analyzer, line) pairs. Line numbers
// matter — adjust the expectations when editing.
package fixture

//np:hotpath
func hotBad(xs []int) []int {
	buf := make([]int, 8)       // line 8: make
	buf = append(buf, xs...)    // line 9: append
	m := map[string]int{"k": 1} // line 10: map literal
	s := []int{1, 2, 3}         // line 11: slice literal
	p := &point{1, 2}           // line 12: &composite
	f := func() { _ = m }       // line 13: closure
	go f()                      // line 14: goroutine
	_ = s
	_ = p
	return buf
}

//np:hotpath
func hotWaived() []int {
	//np:alloc-ok preallocated spare, audited
	buf := make([]int, 4)
	arr := [4]int{1, 2, 3, 4} // fixed-size array: no allocation, no finding
	_ = arr
	return buf
}

// No marker: the same constructs are fine here.
func cold() []int {
	return append(make([]int, 0, 4), 1, 2, 3)
}

type point struct{ x, y int }
