package npvet

import (
	"os"
	"path/filepath"
	"testing"
)

// finding identifies one expected diagnostic by analyzer, file and line.
type finding struct {
	analyzer string
	file     string
	line     int
}

func TestSeededViolations(t *testing.T) {
	diags, err := Run([]string{filepath.Join("testdata", "src")}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}

	want := []finding{
		{"hotpath", "hot.go", 8},  // make
		{"hotpath", "hot.go", 9},  // append
		{"hotpath", "hot.go", 10}, // map literal
		{"hotpath", "hot.go", 11}, // slice literal
		{"hotpath", "hot.go", 12}, // &composite
		{"hotpath", "hot.go", 13}, // closure
		{"hotpath", "hot.go", 14}, // go statement
		{"obspair", "spans.go", 11},
		{"obspair", "spans.go", 16},
		{"obspair", "spans.go", 17},
		{"lockorder", "locks.go", 14},
		{"lockorder", "locks.go", 20},
		{"lockorder", "locks.go", 24},
	}

	got := map[finding]int{}
	for _, d := range diags {
		got[finding{d.Analyzer, filepath.Base(d.Pos.Filename), d.Pos.Line}]++
	}
	for _, w := range want {
		if got[w] == 0 {
			t.Errorf("missing expected finding %s at %s:%d", w.analyzer, w.file, w.line)
		}
		delete(got, w)
	}
	for f, n := range got {
		t.Errorf("unexpected finding %s at %s:%d (x%d)", f.analyzer, f.file, f.line, n)
	}
}

// TestRepoIsClean runs the full suite over the repository itself: the
// production tree must stay free of findings (waivers included), or `make
// check` breaks for everyone.
func TestRepoIsClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Skipf("module root not found: %v", err)
	}
	diags, err := Run([]string{
		filepath.Join(root, "cmd"),
		filepath.Join(root, "internal"),
		filepath.Join(root, "examples"),
	}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo finding: %s", d)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
