package npvet

import (
	"go/ast"
)

// ObsPair enforces span pairing on the obs tracing API: a Mark returned by
// Track.Begin must reach a matching End(mark) within the same function
// declaration (deferred closures count — ast.Inspect sees them). A span
// that begins and never ends is worse than no span: the trace shows an
// operation that apparently never finished, and the ring slot is wasted.
//
// The heuristic keys on the method names Begin/End with Begin's
// two-argument (name, category) shape, so unrelated Begin methods with
// other arities stay invisible to it.
var ObsPair = &Analyzer{
	Name: "obspair",
	Doc:  "report obs spans that Begin without a matching End in the same function",
	Run:  runObsPair,
}

func runObsPair(p *Pass) {
	p.funcDecls(func(_ *ast.File, fd *ast.FuncDecl) {
		type begin struct {
			name string
			pos  ast.Node
		}
		var begins []begin
		ended := map[string]bool{}

		isBegin := func(c *ast.CallExpr) bool {
			sel, ok := c.Fun.(*ast.SelectorExpr)
			return ok && sel.Sel.Name == "Begin" && len(c.Args) == 2
		}

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if len(x.Rhs) != 1 || len(x.Lhs) != 1 {
					return true
				}
				c, ok := x.Rhs[0].(*ast.CallExpr)
				if !ok || !isBegin(c) {
					return true
				}
				id, ok := x.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				if id.Name == "_" {
					p.Reportf(x.Pos(), "%s discards the span mark from Begin; the span can never End", fd.Name.Name)
					return true
				}
				begins = append(begins, begin{name: id.Name, pos: x})
			case *ast.ExprStmt:
				if c, ok := x.X.(*ast.CallExpr); ok && isBegin(c) {
					p.Reportf(x.Pos(), "%s drops the span mark from Begin; the span can never End", fd.Name.Name)
				}
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if ok && sel.Sel.Name == "End" && len(x.Args) >= 1 {
					if id, ok := x.Args[0].(*ast.Ident); ok {
						ended[id.Name] = true
					}
				}
			}
			return true
		})

		for _, b := range begins {
			if !ended[b.name] {
				p.Reportf(b.pos.Pos(), "%s begins span %q but never passes it to End in this function", fd.Name.Name, b.name)
			}
		}
	})
}
