package npvet

import (
	"bytes"
	"go/ast"
	"go/printer"
	"sort"
)

// LockOrder enforces the pipeline.DeviceLocks discipline. The type stays
// deadlock-free by sorting device kinds inside one Lock([]DeviceKind) call;
// callers that hold one acquisition while opening another reintroduce the
// ordering problem the sort exists to remove. The analyzer flattens each
// function declaration (closures included, in source order — the repo's
// stage goroutines run their bodies sequentially per item) into a list of
// Lock/Unlock events and checks two things: no Lock while another set is
// still held, and every acquisition released in the same declaration.
//
// DeviceLocks methods take exactly one argument (the device slice), which
// distinguishes them from sync.Mutex's zero-argument Lock/Unlock — the
// analyzer ignores the latter entirely.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report DeviceLocks acquisitions that nest or leak within a function",
	Run:  runLockOrder,
}

func runLockOrder(p *Pass) {
	p.funcDecls(func(_ *ast.File, fd *ast.FuncDecl) {
		type event struct {
			lock bool
			key  string // "recv(arg)" — the lock set identity, textually
			node ast.Node
		}
		var events []event
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok || len(c.Args) != 1 {
				return true
			}
			sel, ok := c.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "Unlock") {
				return true
			}
			key := exprText(p, sel.X) + "(" + exprText(p, c.Args[0]) + ")"
			events = append(events, event{lock: sel.Sel.Name == "Lock", key: key, node: c})
			return true
		})
		// ast.Inspect is depth-first but sibling closures can interleave
		// with trailing statements; order events by position so "before"
		// means source order.
		sort.SliceStable(events, func(i, j int) bool { return events[i].node.Pos() < events[j].node.Pos() })

		var held []event
		for _, ev := range events {
			if ev.lock {
				if len(held) > 0 {
					p.Reportf(ev.node.Pos(),
						"%s acquires %s while still holding %s; DeviceLocks orders kinds within one call — "+
							"merge both sets into a single Lock", fd.Name.Name, ev.key, held[len(held)-1].key)
				}
				held = append(held, ev)
				continue
			}
			released := false
			for i := len(held) - 1; i >= 0; i-- {
				if held[i].key == ev.key {
					held = append(held[:i], held[i+1:]...)
					released = true
					break
				}
			}
			if !released {
				p.Reportf(ev.node.Pos(), "%s releases %s, which this function never acquired", fd.Name.Name, ev.key)
			}
		}
		for _, ev := range held {
			p.Reportf(ev.node.Pos(), "%s acquires %s but never releases it in this function", fd.Name.Name, ev.key)
		}
	})
}

func exprText(p *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
