// Package npvet is the Go-source half of the static-analysis layer: a small
// go/ast analyzer framework in the shape of golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf), self-contained on the standard library so the
// zero-dependency build holds. It exists for the three repo invariants stock
// go vet cannot express:
//
//	hotpath    functions marked //np:hotpath must not allocate — no make/
//	           new/append, no closure or slice/map literals, no go
//	           statements. //np:alloc-ok on (or just above) a line waives
//	           it for audited exceptions.
//	obspair    an obs span assigned from Begin must be passed to End within
//	           the same function declaration; a discarded span is a hole in
//	           every trace.
//	lockorder  pipeline.DeviceLocks discipline: one Lock call per scope
//	           (the method sorts kinds internally to stay deadlock-free;
//	           holding one set while acquiring another defeats it), every
//	           acquisition released in the same function.
//
// cmd/npvet is the command-line driver; `make check` runs it over the tree.
package npvet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// An Analyzer is one named check over a parsed directory of Go files.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers is the default suite, in reporting order.
func Analyzers() []*Analyzer { return []*Analyzer{HotPath, ObsPair, LockOrder} }

// A Pass hands one analyzer the parsed files of one directory (one package
// in this repo's layout) plus the reporting sink.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Dir      string
	Files    []*ast.File

	diags  *[]Diagnostic
	waived map[string]map[int]bool // file → lines carrying an //np:alloc-ok
}

// Diagnostic is one finding, pre-positioned for printing.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Msg)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Msg:      fmt.Sprintf(format, args...),
	})
}

// Waived reports whether the line holding pos (or the line just above it)
// carries an //np:alloc-ok waiver comment.
func (p *Pass) Waived(pos token.Pos) bool {
	where := p.Fset.Position(pos)
	lines := p.waived[where.Filename]
	return lines[where.Line] || lines[where.Line-1]
}

// Run parses every Go source directory under the roots (skipping testdata,
// vendor, and hidden directories, unless the root itself is one — the test
// fixtures rely on that) and applies the analyzers. Findings come back
// sorted by position; the error covers I/O and parse failures only.
func Run(roots []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs := map[string]bool{}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if path != root && skipDir(d.Name()) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") {
				dirs[filepath.Dir(path)] = true
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	sorted := make([]string, 0, len(dirs))
	for d := range dirs {
		sorted = append(sorted, d)
	}
	sort.Strings(sorted)

	fset := token.NewFileSet()
	var diags []Diagnostic
	for _, dir := range sorted {
		files, waived, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Fset: fset, Dir: dir, Files: files, diags: &diags, waived: waived})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

func skipDir(name string) bool {
	return name == "testdata" || name == "vendor" ||
		strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")
}

func parseDir(fset *token.FileSet, dir string) ([]*ast.File, map[string]map[int]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	waived := map[string]map[int]bool{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		lines := map[int]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "np:alloc-ok") {
					lines[fset.Position(c.Pos()).Line] = true
				}
			}
		}
		waived[path] = lines
	}
	return files, waived, nil
}

// funcDecls yields every function declaration with a body, across the
// pass's files, in source order.
func (p *Pass) funcDecls(fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}
