package analysis

import (
	"testing"
)

// FuzzSolve feeds the engine randomly-shaped graphs (cycles included) with
// a union-of-reachable-gens bitset problem — a textbook monotone lattice —
// and checks the three properties the analyses depend on: the solve
// terminates without tripping the iteration guard, the result is a true
// fixpoint (one more transfer changes nothing), and every node's own gen
// bit survives into its fact.
func FuzzSolve(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 0, 1, 1, 2, 2, 0})
	f.Add([]byte{5, 0, 1, 0, 2, 1, 3, 2, 3, 3, 4, 4, 0, 4, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		n := int(data[0])%32 + 1
		g := NewDigraph(n)
		edges := data[1:]
		for i := 0; i+1 < len(edges) && i < 256; i += 2 {
			g.AddEdge(int(edges[i])%n, int(edges[i+1])%n)
		}

		problem := Problem[BitSet]{
			Dir:  Forward,
			Init: func(nd int) BitSet { b := NewBitSet(n); b.Set(nd); return b },
			Transfer: func(nd int, deps []BitSet) BitSet {
				out := NewBitSet(n)
				out.Set(nd)
				for _, d := range deps {
					out.UnionWith(d)
				}
				return out
			},
			Equal: func(a, b BitSet) bool { return a.Equal(b) },
		}
		facts, err := Solve(g, problem)
		if err != nil {
			t.Fatalf("monotone problem failed to converge on %d nodes, %d edges: %v", n, g.NumEdges(), err)
		}

		depBuf := make([]BitSet, 0, n)
		for nd := 0; nd < n; nd++ {
			if !facts[nd].Has(nd) {
				t.Fatalf("node %d lost its own gen bit", nd)
			}
			depBuf = depBuf[:0]
			for _, d := range g.Preds(nd) {
				depBuf = append(depBuf, facts[d])
			}
			if again := problem.Transfer(nd, depBuf); !again.Equal(facts[nd]) {
				t.Fatalf("node %d is not at a fixpoint: %v -> %v", nd, facts[nd], again)
			}
		}

		// The same graph must also solve backward (successor union).
		if _, err := Solve(g, Problem[BitSet]{
			Dir:      Backward,
			Init:     problem.Init,
			Transfer: problem.Transfer,
			Equal:    problem.Equal,
		}); err != nil {
			t.Fatalf("backward solve diverged: %v", err)
		}
	})
}
