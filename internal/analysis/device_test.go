package analysis

import (
	"testing"

	"repro/internal/neuron"
	"repro/internal/soc"
	"repro/internal/tensor"
)

// tinyModel is a 3-op quantized chain: conv → logistic → softmax, with one
// weight constant. Logistic is in the APU's unsupported set, so a legal
// plan must place it on the CPU.
func tinyModel() *neuron.Model {
	m := neuron.NewModel("tiny")
	q := &tensor.QuantParams{Scale: 0.02, ZeroPoint: 128}
	ty := func(shape ...int) neuron.OperandType {
		return neuron.OperandType{Shape: tensor.Shape(shape), DType: tensor.UInt8, Quant: q}
	}
	in := m.AddOperand("in", ty(1, 8, 8, 4), nil)
	w := m.AddOperand("w", ty(4, 3, 3, 4), tensor.New(tensor.UInt8, tensor.Shape{4, 3, 3, 4}))
	m.Operands[w].Const.Quant = q
	conv := m.AddOperand("conv", ty(1, 8, 8, 4), nil)
	logi := m.AddOperand("logistic", ty(1, 8, 8, 4), nil)
	sm := m.AddOperand("softmax", ty(1, 8, 8, 4), nil)
	m.AddOperation(neuron.Conv2D, []int{in, w}, []int{conv}, nil)
	m.AddOperation(neuron.Logistic, []int{conv}, []int{logi}, nil)
	m.AddOperation(neuron.Softmax, []int{logi}, []int{sm}, nil)
	m.Inputs = []int{in}
	m.Outputs = []int{sm}
	return m
}

func cmWithPlan(t *testing.T, m *neuron.Model, devices, plan []soc.DeviceKind) *neuron.CompiledModel {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return &neuron.CompiledModel{
		Model:   m,
		SoC:     soc.NewDimensity800(),
		Devices: devices,
		Plan:    plan,
	}
}

func TestDeviceLegalityCompilerOutput(t *testing.T) {
	// The real Execution Planner's output must always audit clean.
	cm, err := neuron.Compile(tinyModel(), soc.NewDimensity800(),
		[]soc.DeviceKind{soc.KindCPU, soc.KindAPU})
	if err != nil {
		t.Fatal(err)
	}
	if res := DeviceLegality("tiny", cm); len(res.Diags) != 0 {
		t.Fatalf("compiler plan flagged: %v", res.Diags)
	}
}

func TestDeviceLegalityMutations(t *testing.T) {
	cpuAPU := []soc.DeviceKind{soc.KindCPU, soc.KindAPU}
	all := []soc.DeviceKind{soc.KindCPU, soc.KindGPU, soc.KindAPU}
	cases := []struct {
		name    string
		check   string
		devices []soc.DeviceKind
		plan    []soc.DeviceKind
	}{
		{
			"plan length mismatch", "device-plan-shape",
			cpuAPU, []soc.DeviceKind{soc.KindCPU},
		},
		{
			"disabled device", "device-not-enabled",
			[]soc.DeviceKind{soc.KindCPU},
			[]soc.DeviceKind{soc.KindCPU, soc.KindCPU, soc.KindAPU},
		},
		{
			"unsupported op on APU", "device-unsupported-op",
			cpuAPU, []soc.DeviceKind{soc.KindAPU, soc.KindAPU, soc.KindAPU},
		},
		{
			"quantized work on the GPU delegate", "device-gpu-quantized",
			all, []soc.DeviceKind{soc.KindGPU, soc.KindCPU, soc.KindCPU},
		},
		{
			"direct APU to GPU hand-off", "device-indirect-transfer",
			all, []soc.DeviceKind{soc.KindAPU, soc.KindGPU, soc.KindCPU},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cm := cmWithPlan(t, tinyModel(), tc.devices, tc.plan)
			res := DeviceLegality("tiny", cm)
			if !res.Has(tc.check) {
				t.Fatalf("want %s, got: %v", tc.check, res.Diags)
			}
		})
	}
}

func TestDeviceLegalityIndirectTransferIsWarning(t *testing.T) {
	all := []soc.DeviceKind{soc.KindCPU, soc.KindGPU, soc.KindAPU}
	// APU conv feeding a GPU logistic: illegal link, but logistic's input
	// is quantized, so the GPU placement is also a hard error; check the
	// severities land as documented.
	cm := cmWithPlan(t, tinyModel(), all,
		[]soc.DeviceKind{soc.KindAPU, soc.KindGPU, soc.KindCPU})
	res := DeviceLegality("tiny", cm)
	for _, d := range res.Diags {
		if d.Check == "device-indirect-transfer" && d.Sev.String() != "warning" {
			t.Errorf("indirect transfer reported as %v, want warning", d.Sev)
		}
		if d.Check == "device-gpu-quantized" && d.Sev.String() != "error" {
			t.Errorf("gpu-quantized reported as %v, want error", d.Sev)
		}
	}
}
