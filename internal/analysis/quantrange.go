package analysis

import (
	"fmt"
	"math"

	"repro/internal/relay"
	"repro/internal/tensor"
	"repro/internal/verify"
)

// Quantization range analysis: a forward dataflow pass that attaches a
// real-domain interval to every expression of a (typically QNN) module,
// then audits each quantization boundary against the interval actually
// flowing into it. passes/quantize.go picks scales and zero points from
// calibration maxima; this analysis is the independent check that the
// choices are sound — the same role PlanSafety plays for the memory planner.
//
// Checks:
//
//	quant-bad-scale       (error) scale <= 0 or non-finite: the affine map
//	                      is degenerate, every value collapses
//	quant-bad-zero-point  (error) zero point outside the storage dtype's
//	                      domain: real zero becomes unrepresentable
//	quant-acc-overflow    (error) a qnn.conv2d/qnn.dense reduction can
//	                      overflow the int32 accumulator at worst case
//	quant-saturate        (warning) the incoming value range exceeds the
//	                      representable range: values will clip
//	quant-low-coverage    (warning) the incoming range uses under 1/8 of
//	                      the representable range: most of the quantized
//	                      domain is wasted and the effective resolution
//	                      drops below 5 bits
//
// Errors mean the quantized domain is lost; warnings mean precision is.

// Interval is a closed real interval fact. Exact marks intervals derived
// from actual values (constants, quantized-domain clamps) as opposed to
// worst-case bounds (conv/dense accumulation); the saturation audit only
// trusts exact intervals, so a deliberately loose bound never produces a
// false alarm. Infinities mark unknown endpoints.
type Interval struct {
	Lo, Hi float64
	Exact  bool
}

func unbounded() Interval { return Interval{math.Inf(-1), math.Inf(1), false} }

// Bounded reports whether both endpoints are finite.
func (iv Interval) Bounded() bool {
	return !math.IsInf(iv.Lo, 0) && !math.IsInf(iv.Hi, 0) && !math.IsNaN(iv.Lo) && !math.IsNaN(iv.Hi)
}

// Hull returns the smallest interval containing both.
func (iv Interval) Hull(o Interval) Interval {
	return Interval{math.Min(iv.Lo, o.Lo), math.Max(iv.Hi, o.Hi), iv.Exact && o.Exact}
}

// Intersect clamps iv to o (clipping: values outside o land on its edges).
func (iv Interval) Intersect(o Interval) Interval {
	out := Interval{math.Max(iv.Lo, o.Lo), math.Min(iv.Hi, o.Hi), iv.Exact && o.Exact}
	if out.Lo > out.Hi { // disjoint: everything clips to the nearer edge
		if iv.Lo > o.Hi {
			return Interval{o.Hi, o.Hi, out.Exact}
		}
		return Interval{o.Lo, o.Lo, out.Exact}
	}
	return out
}

// Add returns the interval sum.
func (iv Interval) Add(o Interval) Interval {
	return Interval{iv.Lo + o.Lo, iv.Hi + o.Hi, iv.Exact && o.Exact}
}

// Mul returns the interval product.
func (iv Interval) Mul(o Interval) Interval {
	c := [4]float64{iv.Lo * o.Lo, iv.Lo * o.Hi, iv.Hi * o.Lo, iv.Hi * o.Hi}
	lo, hi := c[0], c[0]
	for _, v := range c[1:] {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return Interval{lo, hi, iv.Exact && o.Exact}
}

// AbsMax returns the largest magnitude in the interval.
func (iv Interval) AbsMax() float64 { return math.Max(math.Abs(iv.Lo), math.Abs(iv.Hi)) }

func (iv Interval) String() string { return fmt.Sprintf("[%.4g, %.4g]", iv.Lo, iv.Hi) }

// qdomain returns the quantized-integer domain of a storage dtype.
func qdomain(dtype string) (qmin, qmax float64, ok bool) {
	switch dtype {
	case "int8":
		return -128, 127, true
	case "", "uint8": // the QNN flow's default storage type
		return 0, 255, true
	}
	return 0, 0, false
}

// representable returns the real-domain interval an affine quantization
// (scale, zeroPoint, dtype) can express. The interval is exact: quantized
// values are confined to it by construction.
func representable(scale float64, zp int, dtype string) (Interval, bool) {
	qmin, qmax, ok := qdomain(dtype)
	if !ok || !(scale > 0) || math.IsInf(scale, 0) {
		return unbounded(), false
	}
	return Interval{(qmin - float64(zp)) * scale, (qmax - float64(zp)) * scale, true}, true
}

// QuantRanges runs the range analysis over every function of the module and
// returns the audit. Modules with no quantized boundaries produce no
// diagnostics. The module should be type-inferred (CheckedType set), which
// every frontend and pass-pipeline output is; untyped expressions simply
// propagate unknown ranges.
func QuantRanges(m *relay.Module) *verify.Result {
	res := &verify.Result{}
	// Region functions appear both as module definitions and inline in main
	// (the same objects); audit each reachable call once.
	audited := map[relay.Expr]bool{}
	m.Functions(func(name string, fn *relay.Function) {
		if fn != nil {
			analyzeQuantFn(name, fn, audited, res)
		}
	})
	return res
}

// analyzeQuantFn runs the solve over one function body and audits it.
func analyzeQuantFn(fnName string, fn *relay.Function, audited map[relay.Expr]bool, res *verify.Result) {
	// Collect the expression DAG in post order: children get lower ids than
	// parents, so node ids are topologically ordered for the forward solve.
	var exprs []relay.Expr
	idx := map[relay.Expr]int{}
	relay.PostOrderVisit(fn, func(e relay.Expr) {
		idx[e] = len(exprs)
		exprs = append(exprs, e)
	})

	g := NewDigraph(len(exprs))
	// Dependency edges in argument order: Transfer receives deps aligned
	// with the positions established here. A call of a function value gets
	// the callee as its final dep, after the arguments.
	depsOf := func(e relay.Expr) []int {
		switch n := e.(type) {
		case *relay.Call:
			deps := make([]int, 0, len(n.Args)+1)
			for _, a := range n.Args {
				deps = append(deps, idx[a])
			}
			if n.Fn != nil {
				deps = append(deps, idx[n.Fn])
			}
			return deps
		case *relay.Tuple:
			deps := make([]int, len(n.Fields))
			for i, f := range n.Fields {
				deps[i] = idx[f]
			}
			return deps
		case *relay.TupleGetItem:
			return []int{idx[n.Tuple]}
		case *relay.Function:
			return []int{idx[n.Body]}
		}
		return nil
	}
	for i, e := range exprs {
		for _, d := range depsOf(e) {
			g.AddEdge(d, i)
		}
	}

	facts, err := Solve(g, Problem[Interval]{
		Dir:      Forward,
		Init:     func(n int) Interval { return initialInterval(exprs[n]) },
		Transfer: func(n int, deps []Interval) Interval { return transferInterval(exprs[n], deps) },
		Equal:    func(a, b Interval) bool { return a == b },
	})
	if err != nil {
		res.Diags = append(res.Diags, verify.Diagnostic{
			Sev: verify.SevError, Check: "quant-diverged",
			Where: "@" + fnName, Msg: err.Error(),
		})
		return
	}

	// Audit pass: with the final facts in hand, check every quantization
	// boundary once (the solve itself stays pure).
	for _, e := range exprs {
		c, ok := e.(*relay.Call)
		if !ok || c.Op == nil || audited[e] {
			continue
		}
		audited[e] = true
		argFact := func(j int) Interval {
			if j < len(c.Args) {
				return facts[idx[c.Args[j]]]
			}
			return unbounded()
		}
		auditQuantCall(fnName, c, argFact, res)
	}
}

// initialInterval is the boundary fact of leaf expressions.
func initialInterval(e relay.Expr) Interval {
	switch n := e.(type) {
	case *relay.Constant:
		if n.Value != nil {
			return constInterval(n.Value)
		}
	case *relay.Var:
		// A quantized input's type bounds its real values exactly.
		if tt := asTensorType(n.CheckedType(), n.TypeAnnotation); tt != nil && tt.Quant != nil {
			if r, ok := representable(tt.Quant.Scale, int(tt.Quant.ZeroPoint), tt.DType.String()); ok {
				return r
			}
		}
	}
	return unbounded()
}

func asTensorType(tys ...relay.Type) *relay.TensorType {
	for _, ty := range tys {
		if tt, ok := ty.(*relay.TensorType); ok {
			return tt
		}
	}
	return nil
}

// constInterval scans a constant tensor's real-domain extrema. Large
// constants are sampled with a stride: a sampled hull can only shrink, so
// the audit may miss a marginal saturation on a huge weight but never
// raises a false one, and the analysis stays linear.
func constInterval(t *tensor.Tensor) Interval {
	n := t.Elems()
	if n == 0 {
		return Interval{0, 0, true}
	}
	stride := 1
	const maxScan = 1 << 14
	if n > maxScan {
		stride = n / maxScan
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i += stride {
		v := t.GetF(i)
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	return Interval{lo, hi, true}
}

// transferInterval is the forward transfer function: one expression's
// output interval from its dependencies' intervals (aligned with argument
// positions).
func transferInterval(e relay.Expr, deps []Interval) Interval {
	dep := func(i int) Interval {
		if i >= 0 && i < len(deps) {
			return deps[i]
		}
		return unbounded()
	}
	switch n := e.(type) {
	case *relay.Constant, *relay.Var:
		return initialInterval(e)
	case *relay.Tuple:
		if len(n.Fields) == 0 {
			return unbounded()
		}
		out := dep(0)
		for i := 1; i < len(n.Fields); i++ {
			out = out.Hull(dep(i))
		}
		return out
	case *relay.TupleGetItem:
		return dep(0) // conservative: the hull of all fields
	case *relay.Function:
		return dep(0) // the body's interval
	case *relay.Call:
		return callInterval(n, dep)
	}
	return unbounded()
}

func callInterval(c *relay.Call, dep func(int) Interval) Interval {
	if c.Op == nil {
		// A call of a function value (fused primitive, partitioned region):
		// its final dep is the callee, whose fact is its body's.
		return dep(len(c.Args))
	}
	in := dep(0)
	switch c.Op.Name {
	case "qnn.quantize", "qnn.requantize":
		scale := c.Attrs.Float("output_scale", 1)
		zp := c.Attrs.Int("output_zero_point", 0)
		r, ok := representable(scale, zp, c.Attrs.Str("out_dtype", "uint8"))
		if !ok {
			return unbounded()
		}
		if in.Bounded() && in.Exact {
			return in.Intersect(r)
		}
		return r // whatever came in, the output is confined to r
	case "qnn.dequantize":
		scale := c.Attrs.Float("input_scale", 1)
		zp := c.Attrs.Int("input_zero_point", 0)
		dt := "uint8"
		if len(c.Args) > 0 {
			if tt := asTensorType(typeOf(c.Args[0])); tt != nil {
				dt = tt.DType.String()
			}
		}
		if r, ok := representable(scale, zp, dt); ok {
			if in.Bounded() && in.Exact {
				return in.Intersect(r)
			}
			return r
		}
		return in
	case "qnn.conv2d", "qnn.dense", "nn.conv2d", "nn.dense":
		return matmulInterval(c, dep)
	case "nn.bias_add", "add":
		return in.Add(dep(1))
	case "subtract":
		b := dep(1)
		return in.Add(Interval{-b.Hi, -b.Lo, b.Exact})
	case "multiply":
		return in.Mul(dep(1))
	case "maximum":
		b := dep(1)
		return Interval{math.Max(in.Lo, b.Lo), math.Max(in.Hi, b.Hi), in.Exact && b.Exact}
	case "minimum":
		b := dep(1)
		return Interval{math.Min(in.Lo, b.Lo), math.Min(in.Hi, b.Hi), in.Exact && b.Exact}
	case "nn.relu":
		return Interval{math.Max(0, in.Lo), math.Max(0, in.Hi), in.Exact}
	case "clip":
		return in.Intersect(Interval{c.Attrs.Float("a_min", math.Inf(-1)), c.Attrs.Float("a_max", math.Inf(1)), true})
	case "nn.softmax", "sigmoid":
		return Interval{0, 1, true}
	case "tanh":
		return Interval{-1, 1, true}
	case "exp":
		return Interval{math.Exp(in.Lo), math.Exp(in.Hi), in.Exact}
	case "sqrt":
		return Interval{math.Sqrt(math.Max(0, in.Lo)), math.Sqrt(math.Max(0, in.Hi)), in.Exact}
	case "negative":
		return Interval{-in.Hi, -in.Lo, in.Exact}
	case "concatenate":
		// The single argument is a tuple; its fact is already the hull.
		return in
	case "nn.pad":
		return in.Hull(Interval{0, 0, true})
	case "nn.max_pool2d", "nn.avg_pool2d", "nn.global_avg_pool2d", "mean",
		"reshape", "nn.batch_flatten", "squeeze", "transpose", "nn.dropout",
		"layout_transform", "copy", "cast":
		// Range-preserving (pooling and mean stay within the input hull).
		return in
	}
	return unbounded()
}

// typeOf returns an expression's checked type (nil-safe).
func typeOf(e relay.Expr) relay.Type {
	if e == nil {
		return nil
	}
	return e.CheckedType()
}

// reductionSize returns K, the number of multiply-accumulates feeding one
// output element of a conv/dense, from the weight tensor's type.
func reductionSize(c *relay.Call) int {
	if len(c.Args) < 2 {
		return 0
	}
	var tt *relay.TensorType
	if v, ok := c.Args[1].(*relay.Var); ok {
		tt = asTensorType(v.CheckedType(), v.TypeAnnotation)
	} else {
		tt = asTensorType(typeOf(c.Args[1]))
	}
	if tt == nil {
		return 0
	}
	switch c.Op.Name {
	case "qnn.conv2d", "nn.conv2d":
		if len(tt.Shape) == 4 {
			return tt.Shape[1] * tt.Shape[2] * tt.Shape[3]
		}
	case "qnn.dense", "nn.dense":
		if len(tt.Shape) == 2 {
			return tt.Shape[1]
		}
	}
	return 0
}

// matmulInterval bounds a conv/dense output: |out| <= K * max|in| * max|w|.
// The bound is deliberately loose (it ignores cancellation), so the fact is
// marked inexact and the saturation audit will not act on it.
func matmulInterval(c *relay.Call, dep func(int) Interval) Interval {
	k := reductionSize(c)
	in, w := dep(0), dep(1)
	if k <= 0 || !in.Bounded() || !w.Bounded() {
		return unbounded()
	}
	bound := float64(k) * in.AbsMax() * w.AbsMax()
	return Interval{-bound, bound, false}
}

// auditQuantCall emits the diagnostics for one call given its argument
// intervals.
func auditQuantCall(fnName string, c *relay.Call, argFact func(int) Interval, res *verify.Result) {
	where := "@" + fnName + ": " + verify.Summarize(c)
	errorf := func(check, format string, a ...any) {
		res.Diags = append(res.Diags, verify.Diagnostic{Sev: verify.SevError, Check: check, Where: where, Msg: fmt.Sprintf(format, a...)})
	}
	warnf := func(check, format string, a ...any) {
		res.Diags = append(res.Diags, verify.Diagnostic{Sev: verify.SevWarning, Check: check, Where: where, Msg: fmt.Sprintf(format, a...)})
	}
	checkAffine := func(scale float64, zp int, dtype, role string) bool {
		ok := true
		if !(scale > 0) || math.IsNaN(scale) || math.IsInf(scale, 0) {
			errorf("quant-bad-scale", "%s scale %g is not a positive finite number; the affine map is degenerate", role, scale)
			ok = false
		}
		if qmin, qmax, dok := qdomain(dtype); dok {
			if float64(zp) < qmin || float64(zp) > qmax {
				errorf("quant-bad-zero-point", "%s zero point %d is outside the %s domain [%g, %g]; real zero becomes unrepresentable",
					role, zp, dtype, qmin, qmax)
				ok = false
			}
		}
		return ok
	}

	switch c.Op.Name {
	case "qnn.quantize", "qnn.requantize":
		scale := c.Attrs.Float("output_scale", 1)
		zp := c.Attrs.Int("output_zero_point", 0)
		dtype := c.Attrs.Str("out_dtype", "uint8")
		okIn := true
		if c.Op.Name == "qnn.requantize" {
			okIn = checkAffine(c.Attrs.Float("input_scale", 1), c.Attrs.Int("input_zero_point", 0), "uint8", "input")
		}
		if !checkAffine(scale, zp, dtype, "output") || !okIn {
			return
		}
		r, _ := representable(scale, zp, dtype)
		in := argFact(0)
		// Only exact incoming ranges are audited: conservative bounds
		// (conv/dense worst cases) would saturate almost by definition.
		if !in.Bounded() || !in.Exact {
			return
		}
		// A sliver of slack absorbs calibration round-off (the asymmetric
		// uint8 grid clips half an ulp at the positive edge by design);
		// real saturation exceeds it by construction.
		if slack := 1e-9 + 1e-2*r.AbsMax(); in.Lo < r.Lo-slack || in.Hi > r.Hi+slack {
			warnf("quant-saturate", "incoming range %v exceeds the representable range %v; values will clip", in, r)
			return
		}
		if inW, rW := in.Hi-in.Lo, r.Hi-r.Lo; inW > 0 && rW > 0 && inW < rW/8 {
			warnf("quant-low-coverage", "incoming range %v uses %.1f%% of the representable range %v; "+
				"the scale wastes most of the %s domain", in, 100*inW/rW, r, dtype)
		}
	case "qnn.dequantize":
		checkAffine(c.Attrs.Float("input_scale", 1), c.Attrs.Int("input_zero_point", 0), "uint8", "input")
	case "qnn.conv2d", "qnn.dense":
		// Worst-case int32 accumulation: K products of 8-bit magnitudes.
		if k := reductionSize(c); k > 0 {
			if worst := float64(k) * 255 * 255; worst > float64(math.MaxInt32) {
				errorf("quant-acc-overflow", "reduction of %d 8-bit products can reach %.3g, overflowing the int32 accumulator", k, worst)
			}
		}
	}
}
