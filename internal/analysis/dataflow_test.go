package analysis

import (
	"strings"
	"testing"
)

// diamond builds 0 → {1,2} → 3.
func diamond() *Digraph {
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	return g
}

func TestForwardLevels(t *testing.T) {
	levels, err := Solve(diamond(), Problem[int]{
		Dir:  Forward,
		Init: func(int) int { return 0 },
		Transfer: func(n int, deps []int) int {
			lvl := 0
			for _, d := range deps {
				if d+1 > lvl {
					lvl = d + 1
				}
			}
			return lvl
		},
		Equal: func(a, b int) bool { return a == b },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 1, 2}
	for i, w := range want {
		if levels[i] != w {
			t.Errorf("level[%d] = %d, want %d", i, levels[i], w)
		}
	}
}

func TestBackwardReachability(t *testing.T) {
	// 0 → 1 → 2, plus an island 3: only nodes reaching 2 are "needed".
	g := NewDigraph(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	needed, err := Solve(g, Problem[bool]{
		Dir:  Backward,
		Init: func(n int) bool { return n == 2 },
		Transfer: func(n int, deps []bool) bool {
			if n == 2 {
				return true
			}
			for _, d := range deps {
				if d {
					return true
				}
			}
			return false
		},
		Equal: func(a, b bool) bool { return a == b },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, true, false}
	for i, w := range want {
		if needed[i] != w {
			t.Errorf("needed[%d] = %v, want %v", i, needed[i], w)
		}
	}
}

// TestDepOrder checks the engine's core contract: Transfer sees dependency
// facts in edge-insertion order, including duplicates for parallel edges.
func TestDepOrder(t *testing.T) {
	g := NewDigraph(4)
	g.AddEdge(2, 3) // inserted first → position 0
	g.AddEdge(0, 3)
	g.AddEdge(2, 3) // parallel edge: node 2's fact appears twice
	g.AddEdge(1, 3)
	var seen []int
	_, err := Solve(g, Problem[int]{
		Dir:  Forward,
		Init: func(n int) int { return n * 10 },
		Transfer: func(n int, deps []int) int {
			if n == 3 {
				seen = append([]int(nil), deps...)
			}
			return n * 10
		},
		Equal: func(a, b int) bool { return a == b },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{20, 0, 20, 10}
	if len(seen) != len(want) {
		t.Fatalf("deps = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("deps = %v, want %v", seen, want)
		}
	}
}

func TestCyclicConvergence(t *testing.T) {
	// A 3-cycle with a monotone max-transfer converges to the max seed.
	g := NewDigraph(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	facts, err := Solve(g, Problem[int]{
		Dir:  Forward,
		Init: func(n int) int { return n },
		Transfer: func(n int, deps []int) int {
			v := n
			for _, d := range deps {
				if d > v {
					v = d
				}
			}
			return v
		},
		Equal: func(a, b int) bool { return a == b },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range facts {
		if f != 2 {
			t.Errorf("fact[%d] = %d, want 2", i, f)
		}
	}
}

func TestNonConvergenceAborts(t *testing.T) {
	// A non-monotone transfer on a cycle (always increments) must hit the
	// iteration guard, not spin.
	g := NewDigraph(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	_, err := Solve(g, Problem[int]{
		Dir:  Forward,
		Init: func(int) int { return 0 },
		Transfer: func(n int, deps []int) int {
			v := 0
			for _, d := range deps {
				v = d + 1
			}
			return v
		},
		Equal:   func(a, b int) bool { return a == b },
		MaxIter: 100,
	})
	if err == nil || !strings.Contains(err.Error(), "did not converge") {
		t.Fatalf("err = %v, want non-convergence", err)
	}
}

func TestEmptyGraph(t *testing.T) {
	facts, err := Solve(NewDigraph(0), Problem[int]{
		Dir:      Forward,
		Init:     func(int) int { return 0 },
		Transfer: func(int, []int) int { return 0 },
		Equal:    func(a, b int) bool { return a == b },
	})
	if err != nil || len(facts) != 0 {
		t.Fatalf("facts = %v, err = %v", facts, err)
	}
}

func TestLongChainCompaction(t *testing.T) {
	// A long chain whose edges run against the seeding order forces facts
	// to ripple one node per pass, exercising the queue-compaction path;
	// the result must still be exact.
	const n = 5000
	g := NewDigraph(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i+1, i)
	}
	dist, err := Solve(g, Problem[int]{
		Dir:  Forward, // seeds 0..n-1, but facts flow n-1 → 0
		Init: func(int) int { return 0 },
		Transfer: func(nd int, deps []int) int {
			v := 0
			for _, d := range deps {
				if d+1 > v {
					v = d + 1
				}
			}
			return v
		},
		Equal: func(a, b int) bool { return a == b },
	})
	if err != nil {
		t.Fatal(err)
	}
	if dist[0] != n-1 || dist[n-1] != 0 {
		t.Fatalf("dist[0] = %d, dist[%d] = %d; want %d and 0", dist[0], n-1, dist[n-1], n-1)
	}
}

func TestBitSet(t *testing.T) {
	b := NewBitSet(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Fatal("Set/Has broken")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	c := b.Clone()
	c.Clear(64)
	if b.Equal(c) || !b.Has(64) {
		t.Fatal("Clone is not independent")
	}
	c.UnionWith(b)
	if !c.Equal(b) {
		t.Fatal("UnionWith/Equal broken")
	}
}
