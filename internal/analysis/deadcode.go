package analysis

import (
	"fmt"

	"repro/internal/relay"
	"repro/internal/verify"
)

// Dead-code detection over relay modules. The pass pipeline (CSE, fusion,
// partitioning) should never leave unused values behind; when it does, the
// memory planner allocates for them and the executor schedules them, so the
// leak is performance, not correctness — every finding is a warning.
//
//	dead-param     a function parameter its body never reads
//	dead-function  a module function (other than main) that main's body
//	               never references
//
// Plan-level dead nodes are the plan-dead-node check in PlanSafety, which
// sees the graph after lowering.
func DeadCode(m *relay.Module) *verify.Result {
	res := &verify.Result{}
	warnf := func(check, where, format string, a ...any) {
		res.Diags = append(res.Diags, verify.Diagnostic{
			Sev: verify.SevWarning, Check: check, Where: where, Msg: fmt.Sprintf(format, a...),
		})
	}

	// Reachability: every *Function object main's body mentions (partitioned
	// regions are inlined as the same objects the module registers by name).
	reachable := map[*relay.Function]bool{}
	if main := m.Main(); main != nil {
		reachable[main] = true
		relay.PostOrderVisit(main, func(e relay.Expr) {
			if fn, ok := e.(*relay.Function); ok {
				reachable[fn] = true
			}
		})
	}

	m.Functions(func(name string, fn *relay.Function) {
		if fn == nil {
			return
		}
		if name != relay.MainFunc && !reachable[fn] {
			warnf("dead-function", "@"+name, "module function is never referenced from @%s", relay.MainFunc)
		}

		// Parameter liveness: a param is dead when no Var node of the body
		// is that object. Nested functions bind their own params, so scan
		// only this function's immediate body.
		used := map[*relay.Var]bool{}
		relay.PostOrderVisit(fn.Body, func(e relay.Expr) {
			if v, ok := e.(*relay.Var); ok {
				used[v] = true
			}
		})
		for _, p := range fn.Params {
			if !used[p] {
				warnf("dead-param", "@"+name, "parameter %%%s is never read", p.Name)
			}
		}
	})
	return res
}
