package analysis

import "repro/internal/tensor"

// PlanView is the neutral, plain-data export of a runtime.ExecPlan that the
// plan-safety checker consumes. It deliberately carries only what the
// executor *does* — the node list with its reads and writes, the slot
// table, and the storage assignment — and none of what the memory planner
// *concluded* (levels, liveness intervals): the checker recomputes those
// from scratch so a planner bug cannot vouch for itself.
// runtime.(*ExecPlan).View produces one.
type PlanView struct {
	Nodes    []PlanNode
	Slots    []PlanSlot
	Storages []PlanStorage
	// Params are the graph-input slots in declaration order.
	Params []int
	// Outputs are the graph-output slots in result order.
	Outputs []int
}

// Node kinds, mirroring the executor's discriminator.
const (
	PlanNodeOp        = "op"
	PlanNodePrimitive = "primitive"
	PlanNodeExternal  = "external"
)

// PlanNode is one executable step: it reads the Args slots and writes the
// Outs slots. Node ids are the execution (topological) order.
type PlanNode struct {
	ID    int
	Kind  string // PlanNodeOp | PlanNodePrimitive | PlanNodeExternal
	Label string
	Args  []int
	Outs  []int
	// Sub is the serial sub-plan of a fused primitive node; it is audited
	// recursively under the same invariants.
	Sub *PlanView
}

// PlanSlot describes one value slot.
type PlanSlot struct {
	DType tensor.DType
	Elems int
	// Storage is the arena buffer backing the slot, -1 when the value is
	// externally owned (graph inputs, constants, NeuroPilot region outputs).
	Storage int
	// Producer is the defining node id, -1 for inputs and constants.
	Producer int
	IsOutput bool
	IsConst  bool
	IsInput  bool
}

// PlanStorage is one arena buffer.
type PlanStorage struct {
	DType tensor.DType
	Elems int
}

// Graph builds the def-use digraph of the plan: one node per PlanNode, an
// edge from each producing node to each consumer, in argument order. Slot
// indices must already have been range-checked.
func (v *PlanView) Graph() *Digraph {
	g := NewDigraph(len(v.Nodes))
	for _, n := range v.Nodes {
		for _, s := range n.Args {
			if p := v.Slots[s].Producer; p >= 0 {
				g.AddEdge(p, n.ID)
			}
		}
	}
	return g
}
