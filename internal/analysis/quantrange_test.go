package analysis

import (
	"testing"

	"repro/internal/relay"
	"repro/internal/tensor"
)

// constRange builds a float32 constant whose values span [lo, hi].
func constRange(lo, hi float32, n int) *relay.Constant {
	t := tensor.New(tensor.Float32, tensor.Shape{n})
	for i := 0; i < n; i++ {
		t.SetF(i, float64(lo)+float64(hi-lo)*float64(i)/float64(n-1))
	}
	return relay.Const(t)
}

// quantizeOf wraps e in a qnn.quantize with the given affine parameters.
func quantizeOf(e relay.Expr, scale float64, zp int) *relay.Module {
	q := relay.NewCall(relay.OpQnnQuantize, []relay.Expr{e}, relay.Attrs{
		"output_scale":      scale,
		"output_zero_point": zp,
		"out_dtype":         "uint8",
	})
	return relay.NewModule(relay.NewFunc(nil, q))
}

func TestQuantRangesGoodBoundary(t *testing.T) {
	// Values in [-1, 1] quantized with the calibration rule scale =
	// 2*absMax/255, zp = 128: exactly the intended use, no findings.
	m := quantizeOf(constRange(-1, 1, 64), 2.0/255, 128)
	res := QuantRanges(m)
	if len(res.Diags) != 0 {
		t.Fatalf("clean boundary produced diagnostics: %v", res.Diags)
	}
}

func TestQuantBadScale(t *testing.T) {
	for _, scale := range []float64{0, -0.5} {
		m := quantizeOf(constRange(-1, 1, 8), scale, 128)
		if res := QuantRanges(m); !res.Has("quant-bad-scale") {
			t.Errorf("scale %g not flagged: %v", scale, res.Diags)
		}
	}
}

func TestQuantBadZeroPoint(t *testing.T) {
	m := quantizeOf(constRange(-1, 1, 8), 2.0/255, 300)
	if res := QuantRanges(m); !res.Has("quant-bad-zero-point") {
		t.Fatalf("zero point 300 not flagged: %v", res.Diags)
	}
}

func TestQuantSaturate(t *testing.T) {
	// Values span [-10, 10] but the affine map only represents ~[-1, 1].
	m := quantizeOf(constRange(-10, 10, 64), 2.0/255, 128)
	res := QuantRanges(m)
	if !res.Has("quant-saturate") {
		t.Fatalf("saturating boundary not flagged: %v", res.Diags)
	}
	if !res.OK() {
		t.Errorf("saturation should be a warning, got errors: %v", res.Errors())
	}
}

func TestQuantLowCoverage(t *testing.T) {
	// Values span [-0.01, 0.01] under a map sized for [-1, 1]: under 1% of
	// the domain used.
	m := quantizeOf(constRange(-0.01, 0.01, 64), 2.0/255, 128)
	if res := QuantRanges(m); !res.Has("quant-low-coverage") {
		t.Fatalf("wasteful scale not flagged: %v", res.Diags)
	}
}

func TestQuantAccOverflow(t *testing.T) {
	qty := &relay.TensorType{Shape: tensor.Shape{1, 14, 14, 512}, DType: tensor.UInt8,
		Quant: &tensor.QuantParams{Scale: 0.02, ZeroPoint: 128}}
	data := relay.NewVar("data", qty)
	// K = 512*9*9 = 41472; worst-case int32 accumulation 41472*255*255
	// ≈ 2.70e9 exceeds MaxInt32 ≈ 2.15e9.
	wty := &relay.TensorType{Shape: tensor.Shape{8, 512, 9, 9}, DType: tensor.UInt8,
		Quant: &tensor.QuantParams{Scale: 0.01, ZeroPoint: 128}}
	weight := relay.NewVar("w", wty)
	conv := relay.NewCall(relay.OpQnnConv2D, []relay.Expr{data, weight}, relay.Attrs{
		"input_scale": 0.02, "input_zero_point": 128,
		"kernel_scale": 0.01, "kernel_zero_point": 128,
		"padding": []int{4, 4},
	})
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data, weight}, conv))
	res := QuantRanges(m)
	if !res.Has("quant-acc-overflow") {
		t.Fatalf("overflowing reduction not flagged: %v", res.Diags)
	}
	if res.OK() {
		t.Error("accumulator overflow must be error severity")
	}
}

func TestQuantAccNoOverflowSmallK(t *testing.T) {
	qty := &relay.TensorType{Shape: tensor.Shape{1, 14, 14, 32}, DType: tensor.UInt8,
		Quant: &tensor.QuantParams{Scale: 0.02, ZeroPoint: 128}}
	data := relay.NewVar("data", qty)
	wty := &relay.TensorType{Shape: tensor.Shape{8, 32, 3, 3}, DType: tensor.UInt8,
		Quant: &tensor.QuantParams{Scale: 0.01, ZeroPoint: 128}}
	weight := relay.NewVar("w", wty)
	conv := relay.NewCall(relay.OpQnnConv2D, []relay.Expr{data, weight}, relay.Attrs{
		"input_scale": 0.02, "input_zero_point": 128,
		"kernel_scale": 0.01, "kernel_zero_point": 128,
		"padding": []int{1, 1},
	})
	m := relay.NewModule(relay.NewFunc([]*relay.Var{data, weight}, conv))
	if res := QuantRanges(m); res.Has("quant-acc-overflow") {
		t.Fatalf("K=288 flagged spuriously: %v", res.Diags)
	}
}

// TestQuantRangePropagation checks the transfer functions steer the audit:
// a relu ahead of the boundary halves the incoming range, flipping a
// saturating quantization into a clean one.
func TestQuantRangePropagation(t *testing.T) {
	c := constRange(-2, 1, 64)
	relu := relay.NewCall(relay.OpReLU, []relay.Expr{c}, nil)
	// Map sized for [0, ~1.004] at scale 1/255, zp 0 — fine after relu
	// clips the negative half, saturating without it.
	q := relay.NewCall(relay.OpQnnQuantize, []relay.Expr{relu}, relay.Attrs{
		"output_scale": 1.0 / 255, "output_zero_point": 0, "out_dtype": "uint8",
	})
	m := relay.NewModule(relay.NewFunc(nil, q))
	if res := QuantRanges(m); res.Has("quant-saturate") {
		t.Fatalf("relu-clipped range flagged spuriously: %v", res.Diags)
	}

	direct := quantizeOf(constRange(-2, 1, 64), 1.0/255, 0)
	if res := QuantRanges(direct); !res.Has("quant-saturate") {
		t.Fatalf("unclipped range not flagged: %v", res.Diags)
	}
}

// TestQuantIntervalAlgebra pins the Interval lattice operations.
func TestQuantIntervalAlgebra(t *testing.T) {
	a := Interval{-2, 3, true}
	b := Interval{1, 4, true}
	if h := a.Hull(b); h.Lo != -2 || h.Hi != 4 || !h.Exact {
		t.Errorf("Hull = %v", h)
	}
	if s := a.Add(b); s.Lo != -1 || s.Hi != 7 {
		t.Errorf("Add = %v", s)
	}
	if p := a.Mul(b); p.Lo != -8 || p.Hi != 12 {
		t.Errorf("Mul = %v", p)
	}
	if x := a.Intersect(Interval{0, 10, true}); x.Lo != 0 || x.Hi != 3 {
		t.Errorf("Intersect = %v", x)
	}
	if x := a.Intersect(Interval{5, 10, true}); x.Lo != 5 || x.Hi != 5 {
		t.Errorf("disjoint Intersect = %v, want pinned to edge", x)
	}
	if !a.Bounded() || unbounded().Bounded() {
		t.Error("Bounded broken")
	}
	inexact := Interval{0, 1, false}
	if a.Hull(inexact).Exact || a.Add(inexact).Exact || a.Mul(inexact).Exact {
		t.Error("exactness must not survive mixing with an inexact interval")
	}
}
