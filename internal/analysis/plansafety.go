package analysis

import (
	"fmt"

	"repro/internal/verify"
)

// PlanSafety is the independent memory-plan checker: it re-derives, from the
// node list alone, everything runtime's memory planner claims about a plan —
// dependency levels, value liveness, storage lifetimes — and audits the
// storage assignment against the recomputation. runtime.VerifyPlan checks
// that the plan is *self-consistent* (its recorded levels and intervals
// match its structure); PlanSafety checks that the plan is *safe* even if
// every recorded conclusion were wrong, which is what makes it a meaningful
// gate for the aggressive rewrites and searched placements the ROADMAP
// plans: a planner bug and a matching verifier bug would have to conspire
// across two codebases to let a corrupt plan through.
//
// Checks (error severity unless noted):
//
//	plan-slot-range      node/output slot and storage ids are in range
//	plan-topo-order      a node reads only slots produced by earlier nodes
//	plan-single-def      every slot is written exactly once, by its Producer
//	plan-read-undef      every read is of a produced, constant, or input slot
//	plan-storage-shape   a slot's dtype/element count matches its storage
//	plan-storage-alias   no two simultaneously-live slots share a storage,
//	                     under liveness recomputed here (includes the
//	                     planner's one-level release delay: intervals merely
//	                     touching at a level boundary are already unsafe,
//	                     because nodes of one level run concurrently)
//	plan-output-alias    graph outputs have dedicated storage — the
//	                     OutputCopy aliasing contract: an output view must
//	                     stay valid until the caller copies it out
//	plan-external-arena  external-region results are Neuron-runtime-owned,
//	                     never arena-backed (the other half of the contract)
//	plan-missing-storage op/primitive results are always arena-backed
//	plan-dead-node       (warning) a node's results reach no graph output
func PlanSafety(v *PlanView) *verify.Result {
	res := &verify.Result{}
	planSafetyInto(v, "", res)
	return res
}

func planSafetyInto(v *PlanView, prefix string, res *verify.Result) {
	errorf := func(check, where, format string, a ...any) {
		res.Diags = append(res.Diags, verify.Diagnostic{
			Sev: verify.SevError, Check: check, Where: prefix + where, Msg: fmt.Sprintf(format, a...),
		})
	}
	warnf := func(check, where, format string, a ...any) {
		res.Diags = append(res.Diags, verify.Diagnostic{
			Sev: verify.SevWarning, Check: check, Where: prefix + where, Msg: fmt.Sprintf(format, a...),
		})
	}
	nodeWhere := func(n *PlanNode) string {
		return fmt.Sprintf("node %d (%s %s)", n.ID, n.Kind, n.Label)
	}

	// Pass 1: index sanity. Everything downstream dereferences slot and
	// storage ids, so a plan that fails here is reported and abandoned —
	// the remaining checks would index out of range, not find more bugs.
	indexOK := true
	slotOK := func(s int) bool { return s >= 0 && s < len(v.Slots) }
	for i := range v.Nodes {
		n := &v.Nodes[i]
		for _, s := range n.Args {
			if !slotOK(s) {
				errorf("plan-slot-range", nodeWhere(n), "argument slot %d out of range [0,%d)", s, len(v.Slots))
				indexOK = false
			}
		}
		for _, s := range n.Outs {
			if !slotOK(s) {
				errorf("plan-slot-range", nodeWhere(n), "output slot %d out of range [0,%d)", s, len(v.Slots))
				indexOK = false
			}
		}
	}
	for i, sl := range v.Slots {
		if sl.Storage >= len(v.Storages) {
			errorf("plan-slot-range", fmt.Sprintf("slot %d", i), "storage id %d out of range [0,%d)", sl.Storage, len(v.Storages))
			indexOK = false
		}
	}
	for i, s := range v.Outputs {
		if !slotOK(s) {
			errorf("plan-slot-range", fmt.Sprintf("output %d", i), "slot %d out of range [0,%d)", s, len(v.Slots))
			indexOK = false
		}
	}
	if !indexOK {
		return
	}

	// Pass 2: definition discipline, execution order, storage shapes.
	defs := make([]int, len(v.Slots))
	for i := range v.Nodes {
		n := &v.Nodes[i]
		for _, s := range n.Args {
			sl := &v.Slots[s]
			switch {
			case sl.Producer >= len(v.Nodes):
				errorf("plan-slot-range", nodeWhere(n), "slot %d names producer %d beyond the node list", s, sl.Producer)
				return
			case sl.Producer >= n.ID:
				errorf("plan-topo-order", nodeWhere(n), "reads slot %d produced by node %d, which has not executed yet", s, sl.Producer)
			case sl.Producer < 0 && !sl.IsConst && !sl.IsInput:
				errorf("plan-read-undef", nodeWhere(n), "reads slot %d, which is neither produced, constant, nor a graph input", s)
			}
		}
		for _, s := range n.Outs {
			defs[s]++
			if v.Slots[s].Producer != n.ID {
				errorf("plan-single-def", nodeWhere(n), "writes slot %d whose recorded producer is node %d", s, v.Slots[s].Producer)
			}
		}
		switch n.Kind {
		case PlanNodeExternal:
			for _, s := range n.Outs {
				if v.Slots[s].Storage >= 0 {
					errorf("plan-external-arena", nodeWhere(n),
						"external result slot %d is arena-backed (storage %d); the Neuron runtime owns its buffers, "+
							"an arena view here would alias a planner buffer", s, v.Slots[s].Storage)
				}
			}
		case PlanNodeOp, PlanNodePrimitive:
			for _, s := range n.Outs {
				if v.Slots[s].Storage < 0 {
					errorf("plan-missing-storage", nodeWhere(n),
						"result slot %d has no arena storage; the kernel would write into a nil view", s)
				}
			}
		}
	}
	for i, sl := range v.Slots {
		where := fmt.Sprintf("slot %d", i)
		switch {
		case sl.Producer < 0 && defs[i] != 0:
			errorf("plan-single-def", where, "producer-less slot written by %d node(s)", defs[i])
		case sl.Producer >= 0 && defs[i] != 1:
			errorf("plan-single-def", where, "slot written %d times, want exactly once", defs[i])
		}
		if sl.Storage >= 0 {
			st := v.Storages[sl.Storage]
			if st.DType != sl.DType || st.Elems != sl.Elems {
				errorf("plan-storage-shape", where, "slot is %v x%d elems but storage %d is %v x%d",
					sl.DType, sl.Elems, sl.Storage, st.DType, st.Elems)
			}
		}
	}

	// Pass 3: recompute dependency levels with a forward dataflow solve —
	// level(n) = 1 + max(level of producers), 0 with no producers — then
	// derive each slot's live interval [def level, deepest reading level]
	// from the actual reads. Nothing recorded in the plan is consulted.
	g := v.Graph()
	levels, err := Solve(g, Problem[int]{
		Dir:  Forward,
		Init: func(int) int { return 0 },
		Transfer: func(n int, deps []int) int {
			lvl := 0
			for _, d := range deps {
				if d+1 > lvl {
					lvl = d + 1
				}
			}
			return lvl
		},
		Equal: func(a, b int) bool { return a == b },
	})
	if err != nil {
		// A read-before-write cycle: already reported as plan-topo-order.
		errorf("plan-topo-order", "plan", "level recomputation diverged: %v", err)
		return
	}

	defLevel := make([]int, len(v.Slots))
	lastUse := make([]int, len(v.Slots))
	for i, sl := range v.Slots {
		defLevel[i], lastUse[i] = -1, -1
		if sl.Producer >= 0 && sl.Producer < len(v.Nodes) {
			defLevel[i] = levels[sl.Producer]
			lastUse[i] = defLevel[i]
		}
	}
	for i := range v.Nodes {
		n := &v.Nodes[i]
		for _, s := range n.Args {
			if levels[n.ID] > lastUse[s] {
				lastUse[s] = levels[n.ID]
			}
		}
	}

	// Pass 4: aliasing. Arena-backed slots sharing a storage must have
	// disjoint — not merely non-overlapping, strictly separated — live
	// intervals: the executor runs a level's nodes concurrently and only
	// returns a freed storage to the pool one level after its last use, so
	// a reuse at the release level is already a race. Graph outputs are
	// live forever past the run (the caller reads them, OutputCopy detaches
	// them), so any sharing at all is an error for them.
	byStorage := make([][]int, len(v.Storages))
	for i, sl := range v.Slots {
		if sl.Storage >= 0 {
			byStorage[sl.Storage] = append(byStorage[sl.Storage], i)
		}
	}
	for sid, group := range byStorage {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				where := fmt.Sprintf("storage %d", sid)
				if v.Slots[a].IsOutput || v.Slots[b].IsOutput {
					errorf("plan-output-alias", where,
						"graph-output slot shares storage with another slot (slots %d, %d); "+
							"OutputCopy's contract requires outputs on dedicated buffers", a, b)
					continue
				}
				if defLevel[a] <= lastUse[b] && defLevel[b] <= lastUse[a] {
					errorf("plan-storage-alias", where,
						"slots %d (live levels [%d,%d]) and %d (live levels [%d,%d]) share storage while simultaneously live",
						a, defLevel[a], lastUse[a], b, defLevel[b], lastUse[b])
				}
			}
		}
	}

	// Pass 5: needed-ness, a backward solve from the graph outputs. A node
	// none of whose results reaches an output is wasted work — legal, so a
	// warning, but the fusion and CSE passes should never emit one.
	outSlot := make([]bool, len(v.Slots))
	for _, s := range v.Outputs {
		outSlot[s] = true
	}
	needed, err := Solve(g, Problem[bool]{
		Dir: Backward,
		Init: func(n int) bool {
			for _, s := range v.Nodes[n].Outs {
				if outSlot[s] {
					return true
				}
			}
			return false
		},
		Transfer: func(n int, deps []bool) bool {
			for _, s := range v.Nodes[n].Outs {
				if outSlot[s] {
					return true
				}
			}
			for _, d := range deps {
				if d {
					return true
				}
			}
			return false
		},
		Equal: func(a, b bool) bool { return a == b },
	})
	if err == nil {
		for i := range v.Nodes {
			if !needed[i] {
				warnf("plan-dead-node", nodeWhere(&v.Nodes[i]), "no graph output depends on this node's results")
			}
		}
	}

	// Primitive sub-plans obey the same invariants.
	for i := range v.Nodes {
		if v.Nodes[i].Sub != nil {
			planSafetyInto(v.Nodes[i].Sub, fmt.Sprintf("%snode %d sub-plan: ", prefix, v.Nodes[i].ID), res)
		}
	}
}
