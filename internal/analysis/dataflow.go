package analysis

import "fmt"

// This file is the framework half of the package: a small directed-graph
// type and a generic worklist fixpoint solver. Analyses describe themselves
// as a Problem — an initial fact per node, a transfer function combining
// dependency facts, and an equality test bounding the iteration — and Solve
// drives them to a fixpoint in either direction. The transfer function
// receives the facts of all dependencies explicitly (predecessors for
// forward problems, successors for backward ones) rather than a single
// pre-joined fact, so analyses that need per-edge information (argument
// positions, operand order) fit the same engine as classic join-based ones.

// Digraph is a dense directed graph over nodes [0, n). Edge insertion order
// is preserved per node: Preds and Succs return neighbors in the order the
// edges were added, which analyses rely on to align dependency facts with
// argument positions.
type Digraph struct {
	succs [][]int
	preds [][]int
}

// NewDigraph returns a graph with n nodes and no edges.
func NewDigraph(n int) *Digraph {
	return &Digraph{succs: make([][]int, n), preds: make([][]int, n)}
}

// NumNodes returns the node count.
func (g *Digraph) NumNodes() int { return len(g.succs) }

// NumEdges returns the edge count.
func (g *Digraph) NumEdges() int {
	n := 0
	for _, s := range g.succs {
		n += len(s)
	}
	return n
}

// AddNode appends a node and returns its id.
func (g *Digraph) AddNode() int {
	g.succs = append(g.succs, nil)
	g.preds = append(g.preds, nil)
	return len(g.succs) - 1
}

// AddEdge inserts a directed edge. Parallel edges are kept: a consumer
// reading the same value twice sees its fact twice, at the right positions.
func (g *Digraph) AddEdge(from, to int) {
	if from < 0 || from >= len(g.succs) || to < 0 || to >= len(g.succs) {
		panic(fmt.Sprintf("analysis: edge (%d,%d) out of range [0,%d)", from, to, len(g.succs)))
	}
	g.succs[from] = append(g.succs[from], to)
	g.preds[to] = append(g.preds[to], from)
}

// Succs returns the successors of n in insertion order. The slice is owned
// by the graph; callers must not mutate it.
func (g *Digraph) Succs(n int) []int { return g.succs[n] }

// Preds returns the predecessors of n in insertion order.
func (g *Digraph) Preds(n int) []int { return g.preds[n] }

// Direction selects which way facts flow.
type Direction int

const (
	// Forward propagates facts from predecessors to successors (reaching
	// definitions, value ranges, device residency).
	Forward Direction = iota
	// Backward propagates from successors to predecessors (liveness,
	// needed-ness).
	Backward
)

// Problem describes one dataflow analysis over fact type F.
type Problem[F any] struct {
	// Dir selects the propagation direction.
	Dir Direction
	// Init produces node n's starting fact (the lattice bottom, or a
	// boundary fact for entry/exit nodes).
	Init func(n int) F
	// Transfer computes node n's new fact from its dependencies' current
	// facts: the facts of Preds(n) for forward problems, Succs(n) for
	// backward ones, in edge-insertion order. It must be monotone for the
	// solve to terminate, and must not retain or mutate deps.
	Transfer func(n int, deps []F) F
	// Equal reports whether two facts are equal; the solve stops changing a
	// node when its transfer output is Equal to the stored fact.
	Equal func(a, b F) bool
	// MaxIter bounds the total number of transfer applications; 0 selects a
	// generous default scaled to the graph size. Exceeding the bound aborts
	// the solve with an error instead of spinning — the engine's guard
	// against a non-monotone transfer on a cyclic graph.
	MaxIter int
}

// Solve runs the worklist algorithm to a fixpoint and returns the final
// fact of every node. Every node's transfer runs at least once. The error
// is non-nil only when the iteration bound is exceeded.
func Solve[F any](g *Digraph, p Problem[F]) ([]F, error) {
	n := g.NumNodes()
	facts := make([]F, n)
	for i := 0; i < n; i++ {
		facts[i] = p.Init(i)
	}
	if n == 0 {
		return facts, nil
	}

	deps, outs := g.preds, g.succs
	if p.Dir == Backward {
		deps, outs = g.succs, g.preds
	}

	maxIter := p.MaxIter
	if maxIter <= 0 {
		// Monotone problems over a finite lattice change each node at most
		// height-many times; (n+edges+64)*(n+1) covers every practical
		// height without letting a buggy transfer run unbounded.
		maxIter = (n + g.NumEdges() + 64) * (n + 1)
	}

	// Seed every node in dependency-friendly order so DAG problems converge
	// in one sweep when node ids are topologically ordered (the plan and
	// relay builders emit them that way).
	queue := make([]int, 0, n)
	inQueue := make([]bool, n)
	if p.Dir == Forward {
		for i := 0; i < n; i++ {
			queue = append(queue, i)
		}
	} else {
		for i := n - 1; i >= 0; i-- {
			queue = append(queue, i)
		}
	}
	for i := range inQueue {
		inQueue[i] = true
	}

	var depBuf []F
	iters := 0
	for head := 0; head < len(queue); head++ {
		nd := queue[head]
		inQueue[nd] = false
		if iters++; iters > maxIter {
			return nil, fmt.Errorf("analysis: fixpoint did not converge after %d transfer applications "+
				"(non-monotone transfer function or unbounded lattice?)", maxIter)
		}
		depBuf = depBuf[:0]
		for _, d := range deps[nd] {
			depBuf = append(depBuf, facts[d])
		}
		nf := p.Transfer(nd, depBuf)
		if p.Equal(facts[nd], nf) {
			continue
		}
		facts[nd] = nf
		for _, s := range outs[nd] {
			if !inQueue[s] {
				inQueue[s] = true
				queue = append(queue, s)
			}
		}
		// Compact the drained prefix so long solves do not grow the queue
		// without bound.
		if head > n && head*2 > len(queue) {
			queue = append(queue[:0], queue[head+1:]...)
			head = -1
		}
	}
	return facts, nil
}

// BitSet is a fixed-capacity bit vector — the workhorse fact type for
// set-valued analyses (live slots, needed nodes).
type BitSet []uint64

// NewBitSet returns a set with capacity for n elements, all clear.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set adds element i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear removes element i.
func (b BitSet) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// Has reports whether element i is present.
func (b BitSet) Has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Clone returns an independent copy.
func (b BitSet) Clone() BitSet { return append(BitSet(nil), b...) }

// UnionWith adds every element of o to b (capacities must match).
func (b BitSet) UnionWith(o BitSet) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Equal reports element-wise equality.
func (b BitSet) Equal(o BitSet) bool {
	if len(b) != len(o) {
		return false
	}
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set elements.
func (b BitSet) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
