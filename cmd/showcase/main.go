// Command showcase runs the paper's §4 application: synthetic video frames
// flow through the TFLite object detector, the classical face detector, the
// PyTorch anti-spoofing model and the Keras emotion classifier, with the
// Listing 5 gating between stages. Per-frame verdicts and simulated stage
// costs are printed.
//
// Usage:
//
//	showcase -frames 10 -faces 2 -objects 2
//	showcase -frames 20 -pipeline        # also report the §5.2 pipeline comparison
//	showcase -executor=interp            # force the reference interpreter
//	showcase -frames 20 -trace=out.json  # Chrome trace of the pipelined timeline
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/app"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/video"
)

func main() {
	var (
		frames   = flag.Int("frames", 10, "number of video frames")
		faces    = flag.Int("faces", 2, "planted faces per scene")
		objects  = flag.Int("objects", 2, "planted objects per scene")
		width    = flag.Int("width", 160, "frame width")
		height   = flag.Int("height", 120, "frame height")
		seed     = flag.Uint64("seed", 42, "scene seed")
		pipeFlag = flag.Bool("pipeline", false, "compare sequential vs pipelined scheduling")
		executor = flag.String("executor", "auto", "executor for all three models: plan|interp|auto")
		traceOut = flag.String("trace", "", "write the live pipelined timeline as Chrome trace JSON (implies -pipeline)")
	)
	flag.Parse()
	if *traceOut != "" {
		*pipeFlag = true
	}

	kind, err := runtime.ParseExecutorKind(*executor)
	fatal(err)
	fmt.Println("building the three showcase models (TFLite SSD, PyTorch DeePixBiS, Keras emotion CNN)...")
	cfg := app.DefaultConfig()
	cfg.Executor = kind
	sc, err := app.New(cfg)
	fatal(err)
	src, err := video.NewSource(*width, *height, *faces, *objects, *seed)
	fatal(err)

	var timings []app.StageTiming
	for i := 0; i < *frames; i++ {
		f := src.Next()
		res, err := sc.ProcessFrame(f)
		fatal(err)
		timings = append(timings, res.Timing)
		fmt.Printf("frame %2d: %d objects, %d face candidates | detect %s, anti-spoof %s, emotion %s\n",
			res.Frame, len(res.Objects), len(res.Faces),
			res.Timing.Detect, res.Timing.AntiSpoof, res.Timing.Emotion)
		for _, fr := range res.Faces {
			verdict := "SPOOF"
			if fr.Real {
				verdict = fmt.Sprintf("real, emotion=%s (%.2f)", fr.Emotion, fr.Confidence)
			}
			fmt.Printf("    face at (%d,%d,%dx%d): score %.3f -> %s\n",
				fr.Box.X, fr.Box.Y, fr.Box.W, fr.Box.H, fr.SpoofScore, verdict)
		}
	}

	if *pipeFlag {
		var det, spoof, emo float64
		for _, t := range timings {
			det += float64(t.Detect)
			spoof += float64(t.AntiSpoof)
			emo += float64(t.Emotion)
		}
		n := float64(len(timings))
		plan := pipeline.PaperAssignment(
			soc.Seconds(det/n), soc.Seconds(spoof/n), soc.Seconds(emo/n))
		res, err := pipeline.Compare(plan, *frames)
		fatal(err)
		fmt.Printf("\npipeline scheduling over %d frames (measured average stage times):\n", *frames)
		fmt.Printf("  sequential: %s\n  pipelined:  %s (%.2fx)\n",
			res.Sequential, res.Pipelined, res.Speedup)
		fmt.Print(res.Timeline.Gantt(100))

		// And the live pipelined executor: real goroutine stages over the
		// same frames, device mutexes enforcing exclusive use.
		src2, err := video.NewSource(*width, *height, *faces, *objects, *seed)
		fatal(err)
		live, err := sc.RunLive(src2.Frames(*frames), app.Figure5Devices())
		fatal(err)
		fmt.Printf("\nlive pipelined execution (goroutine stages, real inference):\n")
		fmt.Printf("  sequential work: %s\n  pipelined makespan: %s (%.2fx)\n",
			live.SequentialTime, live.Makespan, live.Speedup())
		fmt.Print(live.Timeline.Gantt(100))

		if *traceOut != "" {
			fatal(writeTimelineTrace(*traceOut, live.Timeline))
		}
	}
}

// writeTimelineTrace exports the live pipeline's simulated timeline as a
// Chrome trace: one row per device, so the exclusive-use gaps between the
// three models (the paper's Figure 5 picture) are visible in Perfetto.
func writeTimelineTrace(path string, tl *soc.Timeline) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans := soc.TimelineSpans(tl)
	if err := obs.WriteChromeTrace(f, spans, soc.SimThreadNames()); err != nil {
		return err
	}
	fmt.Printf("showcase: wrote trace %s (%d spans)\n", path, len(spans))
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "showcase:", err)
		os.Exit(1)
	}
}
