// Command nptune is the profile-guided autotuner driver: it extracts the
// tunable kernel tasks of zoo models, measures candidate configurations
// in-process, and writes the winners to a tuning-record file that
// npc/npserve load with -tune-with. It also searches the showcase-pipeline
// device placement with the simulated cost model and records the chosen
// assignment.
//
// Usage:
//
//	nptune -zoo emotion,deepixbis -o tuning_records.json     # tune two models
//	nptune -zoo all -budget 24 -o tuning_records.json        # the whole zoo, tighter budget
//	nptune -pipeline -o tuning_records.json                  # placement search (appends to kernel records)
//	nptune -merge a.json,b.json -o merged.json               # lower-cost-wins merge
//	nptune -show tuning_records.json                         # inspect a record file
//	nptune -check tuning_records.json -zoo emotion           # verify records affect dispatch
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/relay"
	"repro/internal/soc"
	"repro/internal/tune"
)

func main() {
	var (
		zooArg    = flag.String("zoo", "", `comma-separated zoo models to tune, or "all"`)
		sizeArg   = flag.String("size", "lite", "zoo model build preset: lite|full")
		outPath   = flag.String("o", "tuning_records.json", "output record file")
		budget    = flag.Int("budget", 48, "max measured candidates per task")
		seed      = flag.Uint64("seed", 0, "search seed perturbation (0 = task-hash only)")
		strategy  = flag.String("strategy", "auto", "search strategy: auto|grid|random")
		verify    = flag.Bool("verify-bitwise", true, "re-check every candidate's output against the default config")
		pipeFlag  = flag.Bool("pipeline", false, "search the showcase-pipeline device placement and record it")
		frames    = flag.Int("frames", 12, "frame count for -pipeline")
		mergeArg  = flag.String("merge", "", "comma-separated record files to merge into -o")
		showArg   = flag.String("show", "", "print a record file and exit")
		checkArg  = flag.String("check", "", "record file to check against -zoo (exit 1 unless >=1 dispatch decision changes)")
		warmup    = flag.Int("warmup", 1, "warmup runs per candidate")
		reps      = flag.Int("reps", 3, "timed repetitions per candidate (minimum wins)")
		minSample = flag.Int64("min-sample-us", 200, "target duration of one timed repetition, microseconds")
	)
	flag.Parse()

	switch {
	case *showArg != "":
		fatal(showRecords(*showArg))
		return
	case *mergeArg != "":
		fatal(mergeRecords(strings.Split(*mergeArg, ","), *outPath))
		return
	case *checkArg != "":
		fatal(checkRecords(*checkArg, *zooArg, *sizeArg))
		return
	}

	if *zooArg == "" && !*pipeFlag {
		fmt.Fprintln(os.Stderr, "nptune: -zoo, -pipeline, -merge, -show or -check is required")
		flag.Usage()
		os.Exit(2)
	}

	opt := tune.Options{
		Search: tune.SearchOptions{Budget: *budget, Seed: *seed, Strategy: *strategy},
		Measure: tune.Measurer{
			Warmup:      *warmup,
			Reps:        *reps,
			MinSampleNS: *minSample * 1000,
			Verify:      *verify,
		},
		Progress: os.Stdout,
	}

	var recs []tune.Record
	if *zooArg != "" {
		kernelRecs, err := tuneZoo(*zooArg, *sizeArg, opt)
		fatal(err)
		recs = append(recs, kernelRecs...)
	}
	if *pipeFlag {
		placement, err := tunePipeline(*frames)
		fatal(err)
		recs = append(recs, placement)
	}

	// Merge with an existing record file so incremental runs refine rather
	// than clobber earlier results.
	if prev, err := tune.LoadRecords(*outPath); err == nil {
		recs = tune.Merge(prev, recs)
	} else {
		recs = tune.Merge(recs)
	}
	fatal(tune.WriteRecords(*outPath, recs))
	fmt.Printf("nptune: wrote %d record(s) to %s\n", len(recs), *outPath)
}

// tuneZoo tunes each requested zoo model and returns the improving records.
func tuneZoo(zooArg, sizeArg string, opt tune.Options) ([]tune.Record, error) {
	size := models.SizeLite
	switch sizeArg {
	case "lite":
	case "full":
		size = models.SizeFull
	default:
		return nil, fmt.Errorf("nptune: unknown -size %q (want lite or full)", sizeArg)
	}
	names := strings.Split(zooArg, ",")
	if zooArg == "all" {
		names = models.Names()
	}
	var all []tune.Record
	for _, name := range names {
		name = strings.TrimSpace(name)
		spec, err := models.Get(name)
		if err != nil {
			return nil, err
		}
		mod, err := spec.Build(size)
		if err != nil {
			return nil, err
		}
		fmt.Printf("nptune: tuning %s (%s)\n", spec.Name, sizeArg)
		recs, results, err := tune.TuneModule(spec.Name, mod, opt)
		if err != nil {
			return nil, err
		}
		improved := 0
		for _, r := range results {
			if r.Improved() {
				improved++
			}
		}
		fmt.Printf("nptune: %s: %d task(s), %d improved\n", spec.Name, len(results), improved)
		all = append(all, recs...)
	}
	return all, nil
}

// tunePipeline runs the cost-model placement search over the showcase
// stages and returns it as a placement record.
func tunePipeline(frames int) (tune.Record, error) {
	sc := soc.NewDimensity800()
	builds := []struct {
		stage pipeline.Stage
		label string
		build func(models.Size) (*relay.Module, error)
	}{
		{pipeline.StageDetect, "d", models.BuildMobileNetSSDQuant},
		{pipeline.StageSpoof, "s", models.BuildDeePixBiS},
		{pipeline.StageEmotion, "e", models.BuildEmotion},
	}
	stages := make([]pipeline.StageSpec, 0, len(builds))
	for _, b := range builds {
		m, err := b.build(models.SizeFull)
		if err != nil {
			return tune.Record{}, err
		}
		so, err := bench.StageOptionsFor(b.stage, m, sc)
		if err != nil {
			return tune.Record{}, err
		}
		stages = append(stages, pipeline.StageSpec{Name: b.stage.String(), Label: b.label, Options: so.Options})
	}
	res, err := pipeline.SearchSchedule(stages, pipeline.SearchOptions{Frames: frames})
	if err != nil {
		return tune.Record{}, err
	}
	fmt.Printf("nptune: pipeline placement: %s\n", res.Describe(stages))
	choice := map[string]string{}
	for i, c := range res.Choice {
		choice[stages[i].Name] = c
	}
	return tune.Record{
		Schema: tune.SchemaVersion,
		Kind:   tune.KindPlacement,
		Task:   "pipeline|showcase",
		Choice: choice,
		CostNS: int64(res.Pipelined * 1e9),
		Model:  "showcase",
	}, nil
}

// mergeRecords implements -merge: lower-cost-wins across all inputs.
func mergeRecords(paths []string, out string) error {
	sets := make([][]tune.Record, 0, len(paths))
	for _, p := range paths {
		recs, err := tune.LoadRecords(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		sets = append(sets, recs)
	}
	merged := tune.Merge(sets...)
	if err := tune.WriteRecords(out, merged); err != nil {
		return err
	}
	fmt.Printf("nptune: merged %d file(s) into %s (%d record(s))\n", len(paths), out, len(merged))
	return nil
}

// showRecords implements -show.
func showRecords(path string) error {
	recs, err := tune.LoadRecords(path)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-72s %-28s %12s %12s %s\n", "kind", "task", "config/choice", "cost", "default", "model")
	for _, r := range recs {
		detail := r.Config.Kernel().String()
		if r.Kind == tune.KindPlacement {
			parts := make([]string, 0, len(r.Choice))
			for s, tgt := range r.Choice {
				parts = append(parts, s+"="+tgt)
			}
			detail = strings.Join(parts, " ")
		}
		def := "-"
		if r.DefaultNS > 0 {
			def = fmt.Sprintf("%d ns", r.DefaultNS)
		}
		fmt.Printf("%-10s %-72s %-28s %9d ns %12s %s\n", r.Kind, r.Task, detail, r.CostNS, def, r.Model)
	}
	fmt.Printf("%d record(s)\n", len(recs))
	return nil
}

// checkRecords implements -check: the records must load cleanly and change
// at least one dispatch decision of the given zoo model — the tune-smoke
// acceptance gate.
func checkRecords(path, zooArg, sizeArg string) error {
	if zooArg == "" || zooArg == "all" {
		return fmt.Errorf("nptune: -check needs a single -zoo model")
	}
	tbl, n, err := tune.LoadTable(path)
	if err != nil {
		return err
	}
	fmt.Printf("nptune: loaded %d record(s), %d kernel config(s)\n", n, tbl.Len())
	size := models.SizeLite
	if sizeArg == "full" {
		size = models.SizeFull
	}
	spec, err := models.Get(zooArg)
	if err != nil {
		return err
	}
	mod, err := spec.Build(size)
	if err != nil {
		return err
	}
	var ierr error
	mod.Functions(func(name string, f *relay.Function) {
		if ierr == nil {
			_, ierr = relay.InferTypes(f)
		}
	})
	if ierr != nil {
		return ierr
	}
	tasks := tune.Tasks(mod)
	changed := 0
	for _, task := range tasks {
		if cfg, ok := tbl.Lookup(task); ok && !cfg.IsDefault() {
			changed++
			fmt.Printf("  %s -> %s\n", task, cfg)
		}
	}
	if changed == 0 {
		return fmt.Errorf("nptune: records in %s change no dispatch decision of %s (%d task(s) extracted)",
			path, spec.Name, len(tasks))
	}
	fmt.Printf("nptune: %d of %d task(s) of %s dispatch with tuned configs\n", changed, len(tasks), spec.Name)
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "nptune:", err)
		os.Exit(1)
	}
}
