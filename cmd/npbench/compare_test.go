package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// writeBenchJSON fabricates a go test -json stream with the given
// benchmark result lines, splitting each line across two Output events the
// way test2json really does (name first, columns later).
func writeBenchJSON(t *testing.T, path string, lines ...string) {
	t.Helper()
	var b []byte
	for _, l := range lines {
		half := len(l) / 2
		b = append(b, []byte(fmt.Sprintf("{\"Action\":\"output\",\"Output\":%q}\n", l[:half]))...)
		b = append(b, []byte(fmt.Sprintf("{\"Action\":\"output\",\"Output\":%q}\n", l[half:]+"\n"))...)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

func benchLineFor(name string, ns float64, allocs int) string {
	return fmt.Sprintf("%s-8   \t     100\t%11.1f ns/op\t     512 B/op\t      %d allocs/op", name, ns, allocs)
}

func TestCompareGatesOnlyOnIntersection(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBenchJSON(t, oldPath,
		benchLineFor("BenchmarkShared", 1000, 10),
		benchLineFor("BenchmarkRetired", 50, 1),
	)
	writeBenchJSON(t, newPath,
		benchLineFor("BenchmarkShared", 1050, 10), // +5%: under threshold
		benchLineFor("BenchmarkBrandNew", 99999, 999),
	)
	n, err := compareRuns(oldPath, newPath)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("one-sided benchmarks counted as regressions: %d", n)
	}
}

func TestCompareCountsRealRegressions(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBenchJSON(t, oldPath,
		benchLineFor("BenchmarkSlow", 1000, 10),
		benchLineFor("BenchmarkAllocs", 100, 10),
		benchLineFor("BenchmarkFine", 100, 10),
	)
	writeBenchJSON(t, newPath,
		benchLineFor("BenchmarkSlow", 1200, 10),  // +20% ns/op
		benchLineFor("BenchmarkAllocs", 100, 12), // +20% allocs/op
		benchLineFor("BenchmarkFine", 105, 10),
	)
	n, err := compareRuns(oldPath, newPath)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("regressions = %d, want 2 (ns and allocs)", n)
	}
}

func TestCompareDisjointRunsDoNotFail(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	writeBenchJSON(t, oldPath, benchLineFor("BenchmarkOnlyOld", 10, 1))
	writeBenchJSON(t, newPath, benchLineFor("BenchmarkOnlyNew", 20, 2))
	n, err := compareRuns(oldPath, newPath)
	if err != nil {
		t.Fatalf("disjoint benchmark sets hard-failed: %v", err)
	}
	if n != 0 {
		t.Fatalf("disjoint sets produced %d regressions", n)
	}
}

func TestCompareBothEmptyIsAnError(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	os.WriteFile(oldPath, nil, 0o644)
	os.WriteFile(newPath, nil, 0o644)
	if _, err := compareRuns(oldPath, newPath); err == nil {
		t.Fatal("two empty artifacts should be a usage error")
	}
}

func TestNormalizeBenchName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFigure4-8":  "BenchmarkFigure4",
		"BenchmarkFigure4-96": "BenchmarkFigure4",
		"BenchmarkFigure4":    "BenchmarkFigure4",
		"BenchmarkX-v2":       "BenchmarkX-v2",
	}
	for in, want := range cases {
		if got := normalizeBenchName(in); got != want {
			t.Errorf("normalizeBenchName(%q) = %q, want %q", in, got, want)
		}
	}
}
