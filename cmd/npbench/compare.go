package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// compareRuns implements `npbench -compare old.json new.json`: both files
// are `go test -json` event streams as written by `make bench`
// (BENCH_PR*.json). It prints per-benchmark ns/op and allocs/op deltas and
// reports whether any benchmark regressed by more than regressionPct on
// either axis — CI runs it as a non-blocking step, so a regression flags
// the job step without failing the build.
const regressionPct = 10.0

type benchResult struct {
	nsOp      float64
	allocsOp  float64
	hasAlloc  bool
	bytesOp   float64
	hasBytes  bool
	seenOrder int
}

// benchLine matches a testing.B result line after test2json reassembly.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// parseBenchJSON reassembles the Output events of a test2json stream and
// extracts benchmark result lines. test2json splits one benchmark line
// across several events (the name flushes before the timing columns), so
// the Output payloads are concatenated first and split on real newlines.
func parseBenchJSON(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate trailing non-JSON noise
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := map[string]benchResult{}
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := normalizeBenchName(m[1])
		res := benchResult{seenOrder: len(out)}
		res.nsOp, _ = strconv.ParseFloat(m[2], 64)
		for _, metric := range strings.Split(m[3], "\t") {
			metric = strings.TrimSpace(metric)
			switch {
			case strings.HasSuffix(metric, " allocs/op"):
				res.allocsOp, _ = strconv.ParseFloat(strings.TrimSuffix(metric, " allocs/op"), 64)
				res.hasAlloc = true
			case strings.HasSuffix(metric, " B/op"):
				res.bytesOp, _ = strconv.ParseFloat(strings.TrimSuffix(metric, " B/op"), 64)
				res.hasBytes = true
			}
		}
		out[name] = res
	}
	return out, nil
}

// normalizeBenchName drops the trailing -GOMAXPROCS suffix so runs from
// machines with different core counts compare by benchmark identity.
func normalizeBenchName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// compareRuns prints the delta table and returns the number of benchmarks
// that regressed beyond the threshold.
func compareRuns(oldPath, newPath string) (int, error) {
	oldRes, err := parseBenchJSON(oldPath)
	if err != nil {
		return 0, fmt.Errorf("parse %s: %w", oldPath, err)
	}
	newRes, err := parseBenchJSON(newPath)
	if err != nil {
		return 0, fmt.Errorf("parse %s: %w", newPath, err)
	}
	if len(oldRes) == 0 {
		return 0, fmt.Errorf("%s contains no benchmark results", oldPath)
	}
	if len(newRes) == 0 {
		return 0, fmt.Errorf("%s contains no benchmark results", newPath)
	}

	// Stable report order: old file's appearance order, then new-only names.
	names := make([]string, 0, len(oldRes))
	for n := range oldRes {
		names = append(names, n)
	}
	for i := range names {
		for j := i + 1; j < len(names); j++ {
			if oldRes[names[j]].seenOrder < oldRes[names[i]].seenOrder {
				names[i], names[j] = names[j], names[i]
			}
		}
	}

	regressions := 0
	fmt.Printf("%-64s %14s %14s %8s %10s %10s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")
	for _, n := range names {
		o := oldRes[n]
		nw, ok := newRes[n]
		if !ok {
			fmt.Printf("%-64s %14.0f %14s\n", n, o.nsOp, "(gone)")
			continue
		}
		nsPct := pctDelta(o.nsOp, nw.nsOp)
		allocCols := fmt.Sprintf("%10s %10s %8s", "-", "-", "-")
		allocPct := 0.0
		if o.hasAlloc && nw.hasAlloc {
			allocPct = pctDelta(o.allocsOp, nw.allocsOp)
			allocCols = fmt.Sprintf("%10.0f %10.0f %+7.1f%%", o.allocsOp, nw.allocsOp, allocPct)
		}
		marker := ""
		if nsPct > regressionPct || allocPct > regressionPct {
			regressions++
			marker = "  << REGRESSION"
		}
		fmt.Printf("%-64s %14.0f %14.0f %+7.1f%% %s%s\n", n, o.nsOp, nw.nsOp, nsPct, allocCols, marker)
	}
	for n, res := range newRes {
		if _, ok := oldRes[n]; !ok {
			fmt.Printf("%-64s %14s %14.0f   (new)\n", n, "-", res.nsOp)
		}
	}
	if regressions > 0 {
		fmt.Printf("\n%d benchmark(s) regressed more than %.0f%%\n", regressions, regressionPct)
	}
	return regressions, nil
}
