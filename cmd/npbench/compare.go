package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// compareRuns implements `npbench -compare old.json new.json`: both files
// are `go test -json` event streams as written by `make bench`
// (BENCH_PR*.json). It prints per-benchmark ns/op and allocs/op deltas and
// reports whether any benchmark regressed by more than regressionPct on
// either axis — CI runs it as a non-blocking step, so a regression flags
// the job step without failing the build.
const regressionPct = 10.0

type benchResult struct {
	nsOp      float64
	allocsOp  float64
	hasAlloc  bool
	bytesOp   float64
	hasBytes  bool
	seenOrder int
}

// benchLine matches a testing.B result line after test2json reassembly.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(.*)$`)

// parseBenchJSON reassembles the Output events of a test2json stream and
// extracts benchmark result lines. test2json splits one benchmark line
// across several events (the name flushes before the timing columns), so
// the Output payloads are concatenated first and split on real newlines.
func parseBenchJSON(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate trailing non-JSON noise
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}

	out := map[string]benchResult{}
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := normalizeBenchName(m[1])
		res := benchResult{seenOrder: len(out)}
		res.nsOp, _ = strconv.ParseFloat(m[2], 64)
		for _, metric := range strings.Split(m[3], "\t") {
			metric = strings.TrimSpace(metric)
			switch {
			case strings.HasSuffix(metric, " allocs/op"):
				res.allocsOp, _ = strconv.ParseFloat(strings.TrimSuffix(metric, " allocs/op"), 64)
				res.hasAlloc = true
			case strings.HasSuffix(metric, " B/op"):
				res.bytesOp, _ = strconv.ParseFloat(strings.TrimSuffix(metric, " B/op"), 64)
				res.hasBytes = true
			}
		}
		out[name] = res
	}
	return out, nil
}

// normalizeBenchName drops the trailing -GOMAXPROCS suffix so runs from
// machines with different core counts compare by benchmark identity.
func normalizeBenchName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func pctDelta(old, new float64) float64 {
	if old == 0 {
		return 0
	}
	return (new - old) / old * 100
}

// compareRow is one benchmark present in both runs.
type compareRow struct {
	name       string
	old, new   benchResult
	nsPct      float64
	allocPct   float64
	haveAllocs bool
	regressed  bool
}

// compareReport partitions two runs into the gated intersection plus the
// one-sided remainders. Only the intersection can regress: a benchmark that
// exists on just one side (renamed, added, or retired) is reported but never
// fails the gate — otherwise every benchmark rename would break the
// baseline comparison until the committed artifact is regenerated.
type compareReport struct {
	rows           []compareRow
	added, removed []string
}

func (r *compareReport) regressions() int {
	n := 0
	for _, row := range r.rows {
		if row.regressed {
			n++
		}
	}
	return n
}

// buildReport diffs two parsed runs.
func buildReport(oldRes, newRes map[string]benchResult) *compareReport {
	// Stable order: old file's appearance order, then new-only names sorted.
	names := make([]string, 0, len(oldRes))
	for n := range oldRes {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return oldRes[names[i]].seenOrder < oldRes[names[j]].seenOrder
	})

	rep := &compareReport{}
	for _, n := range names {
		o := oldRes[n]
		nw, ok := newRes[n]
		if !ok {
			rep.removed = append(rep.removed, n)
			continue
		}
		row := compareRow{name: n, old: o, new: nw, nsPct: pctDelta(o.nsOp, nw.nsOp)}
		if o.hasAlloc && nw.hasAlloc {
			row.haveAllocs = true
			row.allocPct = pctDelta(o.allocsOp, nw.allocsOp)
		}
		row.regressed = row.nsPct > regressionPct || row.allocPct > regressionPct
		rep.rows = append(rep.rows, row)
	}
	for n := range newRes {
		if _, ok := oldRes[n]; !ok {
			rep.added = append(rep.added, n)
		}
	}
	sort.Strings(rep.added)
	return rep
}

// compareRuns prints the delta table and returns the number of benchmarks
// that regressed beyond the threshold. One-sided benchmarks never count.
func compareRuns(oldPath, newPath string) (int, error) {
	oldRes, err := parseBenchJSON(oldPath)
	if err != nil {
		return 0, fmt.Errorf("parse %s: %w", oldPath, err)
	}
	newRes, err := parseBenchJSON(newPath)
	if err != nil {
		return 0, fmt.Errorf("parse %s: %w", newPath, err)
	}
	if len(oldRes) == 0 && len(newRes) == 0 {
		return 0, fmt.Errorf("neither %s nor %s contains benchmark results", oldPath, newPath)
	}
	rep := buildReport(oldRes, newRes)

	if len(rep.rows) == 0 {
		fmt.Printf("no benchmarks in common between %s and %s — nothing to gate on\n", oldPath, newPath)
	} else {
		fmt.Printf("%-64s %14s %14s %8s %10s %10s %8s\n",
			"benchmark", "old ns/op", "new ns/op", "Δns", "old allocs", "new allocs", "Δallocs")
		for _, row := range rep.rows {
			allocCols := fmt.Sprintf("%10s %10s %8s", "-", "-", "-")
			if row.haveAllocs {
				allocCols = fmt.Sprintf("%10.0f %10.0f %+7.1f%%", row.old.allocsOp, row.new.allocsOp, row.allocPct)
			}
			marker := ""
			if row.regressed {
				marker = "  << REGRESSION"
			}
			fmt.Printf("%-64s %14.0f %14.0f %+7.1f%% %s%s\n",
				row.name, row.old.nsOp, row.new.nsOp, row.nsPct, allocCols, marker)
		}
	}
	if len(rep.removed) > 0 {
		fmt.Printf("\nonly in %s (%d, not gated):\n", oldPath, len(rep.removed))
		for _, n := range rep.removed {
			fmt.Printf("  %s\n", n)
		}
	}
	if len(rep.added) > 0 {
		fmt.Printf("\nonly in %s (%d, not gated):\n", newPath, len(rep.added))
		for _, n := range rep.added {
			fmt.Printf("  %s\n", n)
		}
	}
	if n := rep.regressions(); n > 0 {
		fmt.Printf("\n%d benchmark(s) regressed more than %.0f%%\n", n, regressionPct)
		return n, nil
	}
	return 0, nil
}
