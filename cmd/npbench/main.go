// Command npbench regenerates the paper's evaluation artifacts: Figure 4
// (showcase models × seven target permutations), Figure 5 (pipeline
// scheduling prototype), Figure 6 (extended classifier sweep), Table 1
// (model inventory) and Table 2 (platform specification).
//
// Usage:
//
//	npbench              # everything
//	npbench -fig 4       # one figure
//	npbench -table 1     # one table
//
// It also serves as the benchmark regression gate:
//
//	npbench -compare old.json new.json
//
// compares two `make bench` artifacts (go test -json streams) and exits
// nonzero when any benchmark's ns/op or allocs/op regressed by more than
// 10% — CI runs this as a non-blocking step against the committed baseline.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/models"
	"repro/internal/pipeline"
	"repro/internal/relay"
	"repro/internal/soc"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "regenerate one figure (4, 5 or 6); 0 = all")
		table   = flag.Int("table", 0, "regenerate one table (1 or 2); 0 = all")
		frames  = flag.Int("frames", 12, "frame count for the Figure 5 pipeline")
		ext     = flag.Bool("ext", false, "also run the extension experiments (GPU backend, op-level scheduling)")
		compare = flag.Bool("compare", false, "compare two `make bench` JSON artifacts: npbench -compare old.json new.json")
	)
	flag.Parse()
	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: npbench -compare old.json new.json")
			os.Exit(2)
		}
		regressions, err := compareRuns(flag.Arg(0), flag.Arg(1))
		fatal(err)
		if regressions > 0 {
			os.Exit(1)
		}
		return
	}
	sc := soc.NewDimensity800()
	all := *fig == 0 && *table == 0

	if all || *table == 2 {
		fmt.Println(bench.Table2String(sc))
	}
	if all || *table == 1 {
		fmt.Println(bench.Table1String())
	}
	if all || *fig == 4 {
		rows, err := bench.RunFigure4(sc)
		fatal(err)
		fmt.Println(bench.RenderFigure("Figure 4: inference time for the showcase models across targets", rows))
		fmt.Println("computation schedule (per-model best target, §5.1):")
		for name, p := range bench.ComputationSchedule(rows) {
			fmt.Printf("  %-24s -> %s\n", name, p)
		}
		fmt.Println()
	}
	if all || *fig == 6 {
		rows, err := bench.RunFigure6(sc)
		fatal(err)
		fmt.Println(bench.RenderFigure("Figure 6: inference time for more models across targets", rows))
	}
	if all || *fig == 5 {
		res, err := bench.RunFigure5(sc, *frames)
		fatal(err)
		fmt.Printf("Figure 5: pipeline scheduling prototype (%d frames)\n", *frames)
		fmt.Printf("  stage plan: detect=%s on cpu, anti-spoof=%s on cpu+apu, emotion=%s on apu\n",
			res.Plan.Detect.Duration, res.Plan.Spoof.Duration, res.Plan.Emotion.Duration)
		fmt.Printf("  contended (det on cpu+apu): sequential %s, pipelined %s (%.2fx)\n",
			res.Contention.Sequential, res.Contention.Pipelined, res.Contention.Speedup)
		fmt.Printf("  paper plan (det on cpu):    sequential %s, pipelined %s (%.2fx)\n",
			res.Paper.Sequential, res.Paper.Pipelined, res.Paper.Speedup)
		fmt.Print(res.Gantt)

		auto, err := bench.RunAutoPipeline(sc, *frames)
		fatal(err)
		fmt.Printf("\nautomatic pipeline scheduling (paper's announced future work, %d assignments searched):\n",
			auto.Evaluated)
		fmt.Printf("  detect=%s, anti-spoof=%s, emotion=%s\n",
			auto.Choice[pipeline.StageDetect], auto.Choice[pipeline.StageSpoof],
			auto.Choice[pipeline.StageEmotion])
		fmt.Printf("  pipelined %s (%.2fx vs its sequential)\n",
			auto.Result.Pipelined, auto.Result.Speedup)
	}
	if *ext {
		fmt.Println(bench.SupportMatrixString())
		fmt.Println("\nExtension: GPU backend enabled (cpu+gpu+apu vs cpu+apu, greedy planner)")
		rows, err := bench.RunGPUExtension(sc)
		fatal(err)
		for _, r := range rows {
			fmt.Printf("  %-24s cpu+apu %10s   cpu+gpu+apu %10s\n",
				r.Name, r.CPUAPU.Time, r.CPUGPUAPU.Time)
		}
		fmt.Println("\nExtension: automatic quantization (calibrate + rewrite to QNN, relay.quantize-style)")
		aq, err := bench.RunAutoQuantExtension(sc)
		fatal(err)
		fmt.Printf("  %-24s float %10s -> int8 %10s (%.2fx), max output diff %.4f, same top-1: %v\n",
			aq.Model, aq.Float.Time, aq.Quantized.Time,
			float64(aq.Float.Time)/float64(aq.Quantized.Time), aq.MaxAbsDiff, aq.SamePick)

		fmt.Println("\nExtension: model-level vs operation-level scheduling (NeuroPilot-only)")
		for _, spec := range []string{"emotion", "densenet", "mobilenet v1"} {
			s, err := benchModelByName(spec)
			fatal(err)
			cmp, err := bench.RunOpLevelComparison(spec, s, sc)
			fatal(err)
			fmt.Printf("  %-24s model-level %10s (%s)   op-level %10s\n",
				spec, cmp.ModelLevel.Time, cmp.ModelLevelPick, cmp.OpLevel.Time)
		}
	}
}

func benchModelByName(name string) (*relay.Module, error) {
	spec, err := models.Get(name)
	if err != nil {
		return nil, err
	}
	return spec.Build(models.SizeFull)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "npbench:", err)
		os.Exit(1)
	}
}
