// Command npvet runs the repo's custom Go-source analyzers (see
// internal/analysis/npvet): hot-path allocation freedom, obs span pairing,
// and DeviceLocks discipline. It prints findings in the familiar
// file:line:col form and exits nonzero when there are any, so `make check`
// and CI gate on it exactly like go vet.
//
// Usage:
//
//	npvet [root ...]    analyze the Go trees under the roots (default: .)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis/npvet"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range npvet.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	diags, err := npvet.Run(roots, npvet.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, "npvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "npvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
