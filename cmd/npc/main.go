// Command npc is the compiler driver: it imports a serialized model from
// any supported framework, optimizes it, partitions it for NeuroPilot, and
// writes a deployable library artifact — the offline half of the paper's
// §4.5 cross-compile-and-deploy flow.
//
// Usage:
//
//	npc -model model.tflite -o model.nplib
//	npc -model emotion.json -weights emotion.bin -framework keras -o emotion.nplib
//	npc -model yolov3.cfg -weights yolov3.weights -framework darknet -targets cpu,apu -o yolo.nplib
//	npc -model model.tflite -dump            # print the partitioned relay module
//	npc -model model.tflite -verify -o m.nplib   # IR-verify after every pass
//	npc -model model.tflite -run -executor=plan  # one synthetic inference
//	npc -zoo emotion -run -profile           # per-op profile table for a zoo model
//	npc -zoo emotion -run -trace=out.json    # Chrome trace (load in Perfetto)
//	npc -lint                                # cross-check the operator registries
//	npc -zoo emotion -analyze                # dataflow analyses over one zoo model
//	npc -zoo all -analyze                    # analyze every zoo model
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/neuron"
	"repro/internal/nir"
	"repro/internal/obs"
	"repro/internal/relay"
	"repro/internal/runtime"
	"repro/internal/soc"
	"repro/internal/topi"
	"repro/internal/tune"
	"repro/internal/verify"
)

func main() {
	var (
		modelPath   = flag.String("model", "", "serialized model file (required)")
		weightsPath = flag.String("weights", "", "separate weight blob (keras/pytorch/darknet)")
		framework   = flag.String("framework", "", "source framework: keras|pytorch|tflite|darknet|onnx (default: auto-detect)")
		outPath     = flag.String("o", "", "output artifact path")
		targets     = flag.String("targets", "cpu,apu", "NeuroPilot devices for partitioned regions")
		optLevel    = flag.Int("opt", 3, "optimization level (0-3)")
		noNIR       = flag.Bool("no-nir", false, "disable the NeuroPilot BYOC partitioning (TVM-only build)")
		dump        = flag.Bool("dump", false, "print the optimized/partitioned module instead of writing an artifact")
		dot         = flag.Bool("dot", false, "print the partitioned module as Graphviz DOT")
		stats       = flag.Bool("stats", false, "print per-op statistics of the partitioned module")
		verifyFlag  = flag.Bool("verify", false, "run the IR verifier after every optimization pass")
		lint        = flag.Bool("lint", false, "cross-check the relay-op / NIR-handler / TOPI-kernel / Neuron registries and exit")
		analyzeFlag = flag.Bool("analyze", false, "run the dataflow analyses (plan safety, quant ranges, device legality, dead code) over the compiled module")
		runFlag     = flag.Bool("run", false, "execute one inference on a synthetic input and print the simulated profile")
		executor    = flag.String("executor", "auto", "executor for -run: plan|interp|auto")
		zooName     = flag.String("zoo", "", "build a model-zoo model by name instead of importing -model (\"list\" prints names)")
		sizeFlag    = flag.String("size", "lite", "zoo model size with -zoo: lite|full")
		profileFlag = flag.Bool("profile", false, "with -run: print the per-op profile table")
		traceOut    = flag.String("trace", "", "write a Chrome trace JSON file (compile spans; with -run also executor and simulated-timeline spans)")
		tuneWith    = flag.String("tune-with", "", "tuning-record file (nptune output) to steer kernel dispatch")
	)
	flag.Parse()
	if *tuneWith != "" {
		_, n, err := tune.LoadAndInstall(*tuneWith)
		fatal(err)
		fmt.Printf("npc: loaded %d tuning record(s) from %s\n", n, *tuneWith)
	}
	if *lint {
		runLint()
		return
	}
	if *zooName == "list" {
		for _, n := range models.Names() {
			fmt.Println(n)
		}
		return
	}
	if *zooName == "all" {
		if !*analyzeFlag {
			fmt.Fprintln(os.Stderr, "npc: -zoo all is only meaningful with -analyze")
			os.Exit(2)
		}
		devices, err := parseTargets(*targets)
		fatal(err)
		analyzeZoo(*sizeFlag, runtime.BuildOptions{
			OptLevel:   *optLevel,
			UseNIR:     !*noNIR,
			NIRDevices: devices,
		})
		return
	}
	if *modelPath == "" && *zooName == "" {
		fmt.Fprintln(os.Stderr, "npc: -model or -zoo is required")
		flag.Usage()
		os.Exit(2)
	}

	var mod *relay.Module
	var err error
	if *zooName != "" {
		spec, gerr := models.Get(*zooName)
		fatal(gerr)
		size := models.SizeLite
		if *sizeFlag == "full" {
			size = models.SizeFull
		}
		mod, err = spec.Build(size)
		fatal(err)
		fmt.Printf("npc: built zoo model %s (%s, %s): %d ops\n",
			spec.Name, spec.Framework, *sizeFlag, relay.CountOps(mod.Main()))
	} else {
		model, rerr := os.ReadFile(*modelPath)
		fatal(rerr)
		var weights []byte
		if *weightsPath != "" {
			weights, err = os.ReadFile(*weightsPath)
			fatal(err)
		}
		fw := core.Framework(*framework)
		if fw == "" {
			fw, err = core.DetectFramework(model)
			fatal(err)
		}
		mod, err = core.Import(fw, model, weights)
		fatal(err)
		fmt.Printf("npc: imported %s model: %d ops\n", fw, relay.CountOps(mod.Main()))
	}

	devices, err := parseTargets(*targets)
	fatal(err)
	var tracer *obs.Tracer
	if *traceOut != "" {
		tracer = obs.NewTracer(0)
	}
	opts := runtime.BuildOptions{
		OptLevel:   *optLevel,
		UseNIR:     !*noNIR,
		NIRDevices: devices,
		Verify:     *verifyFlag,
		Tracer:     tracer,
	}
	lib, err := core.Compile(mod, opts)
	fatal(err)
	ext := lib.Module.ExternalFuncs("nir")
	fmt.Printf("npc: compiled: %d NeuroPilot regions, targets %v\n", len(ext), devices)
	if *verifyFlag {
		fmt.Println("npc: IR verification clean after every pass")
	}

	if *analyzeFlag {
		label := *zooName
		if label == "" {
			label = *modelPath
		}
		if !runAnalyze(label, lib) {
			os.Exit(1)
		}
		if *outPath == "" {
			return
		}
	}
	if *dump {
		fmt.Print(relay.PrintModule(lib.Module))
		return
	}
	if *dot {
		fmt.Print(relay.ToDOT(lib.Module))
		return
	}
	if *stats {
		printStats(lib)
		return
	}
	if *runFlag {
		kind, err := runtime.ParseExecutorKind(*executor)
		fatal(err)
		gm, err := runOnce(lib, mod, kind, *profileFlag || *traceOut != "")
		fatal(err)
		if *profileFlag {
			fmt.Print(soc.OpTable(gm.LastProfile().Events()))
			printTunedDispatch()
		}
		if *traceOut != "" {
			fatal(writeTrace(*traceOut, tracer, gm))
		}
		return
	}
	if *traceOut != "" {
		fatal(writeTrace(*traceOut, tracer, nil))
		if *outPath == "" {
			return
		}
	}
	if *outPath == "" {
		fmt.Fprintln(os.Stderr, "npc: -o is required unless -dump/-dot is given")
		os.Exit(2)
	}
	f, err := os.Create(*outPath)
	fatal(err)
	defer f.Close()
	fatal(core.Export(lib, f))
	info, err := f.Stat()
	fatal(err)
	fmt.Printf("npc: wrote %s (%d bytes)\n", *outPath, info.Size())
}

// runOnce executes one inference on a synthetic input through the selected
// executor and prints the plan summary plus the simulated cost profile.
func runOnce(lib *runtime.Lib, mod *relay.Module, kind runtime.ExecutorKind, profile bool) (*runtime.GraphModule, error) {
	gm := runtime.NewGraphModule(lib)
	gm.SetExecutor(kind)
	gm.SetProfiling(profile)
	names := gm.InputNames()
	if len(names) != 1 {
		return nil, fmt.Errorf("npc: -run requires a single-input model, have %d inputs", len(names))
	}
	gm.SetInput(names[0], models.RandomInput(mod, 1))
	if err := gm.Run(); err != nil {
		return nil, err
	}
	if kind != runtime.ExecutorInterp {
		if plan, err := lib.Plan(); err == nil {
			fmt.Printf("npc: %s\n", plan)
		} else {
			fmt.Printf("npc: module not plannable (%v), interpreter used\n", err)
		}
	}
	fmt.Printf("npc: executor=%s, %d output(s), simulated inference %s\n",
		kind, gm.NumOutputs(), gm.LastProfile().Total())
	fmt.Printf("npc: profile: %s\n", gm.LastProfile())
	return gm, nil
}

// printTunedDispatch appends the tuned-dispatch audit to the -profile
// output: which kernel tasks resolved to a tuned configuration during the
// run, and how often. Silent when no tuning table is installed.
func printTunedDispatch() {
	tbl := topi.Tuning()
	if tbl == nil {
		return
	}
	hits, misses := tbl.Stats()
	fmt.Printf("\ntuned dispatch (%d config(s) loaded, %d hit(s), %d miss(es)):\n",
		tbl.Len(), hits, misses)
	for _, d := range tbl.Snapshot() {
		fmt.Printf("  %-72s %-28s %d hit(s)\n", d.Task, d.Config, d.Hits)
	}
}

// writeTrace merges the compile-time tracer spans with (when gm ran profiled)
// the executor's wall-clock node spans and the simulated-clock event layout,
// and writes one Chrome trace JSON file — each clock domain renders as its
// own Perfetto process.
func writeTrace(path string, tracer *obs.Tracer, gm *runtime.GraphModule) error {
	spans, names := tracer.Snapshot()
	if gm != nil {
		exec := gm.TraceSpans()
		spans = append(spans, exec...)
		for _, sp := range exec {
			names[obs.Thread{PID: obs.PIDExec, TID: sp.TID}] = fmt.Sprintf("lane %d", sp.TID-1)
		}
		if prof := gm.LastProfile(); prof != nil && prof.EventsEnabled() {
			spans = append(spans, soc.EventSpans(prof.Events())...)
			for th, n := range soc.SimThreadNames() {
				names[th] = n
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := obs.WriteChromeTrace(f, spans, names); err != nil {
		return err
	}
	fmt.Printf("npc: wrote trace %s (%d spans)\n", path, len(spans))
	return nil
}

// printStats summarizes the compiled module: per-op counts, parameter
// bytes, MAC volume, and the per-region Execution Planner reports.
func printStats(lib *runtime.Lib) {
	counts := map[string]int{}
	var paramBytes int64
	// Partitioned region functions appear both inline in main and as module
	// definitions (same objects); dedupe across the walk.
	seen := map[relay.Expr]bool{}
	lib.Module.Functions(func(name string, fn *relay.Function) {
		relay.PostOrderVisit(fn, func(e relay.Expr) {
			if seen[e] {
				return
			}
			seen[e] = true
			switch n := e.(type) {
			case *relay.Call:
				if n.Op != nil {
					counts[n.Op.Name]++
				}
			case *relay.Constant:
				paramBytes += int64(n.Value.Bytes())
			}
		})
	})
	w := soc.FunctionWork(lib.Module.Main())
	fmt.Printf("npc: %d distinct ops, %.2f MB parameters, %.1f MMACs per inference"+"\n",
		len(counts), float64(paramBytes)/(1<<20), float64(w.MACs)/1e6)
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-24s %d"+"\n", n, counts[n])
	}
	for _, name := range lib.Module.ExternalFuncs("nir") {
		if cm, ok := lib.External[name]; ok {
			fmt.Printf("\nregion %s plan:\n%s", name, cm.PlanReport())
		}
	}
}

// analyzeLib runs the full internal/analysis suite over a compiled library:
// the independent plan-safety checker over the global ExecPlan, quantization
// range analysis, per-region device-transfer legality, and dead-code
// detection. All four emit verify.Diagnostic, so the output reads exactly
// like -lint and -verify findings.
func analyzeLib(lib *runtime.Lib) *verify.Result {
	res := &verify.Result{}
	if plan, err := lib.Plan(); err == nil {
		res.Merge(analysis.PlanSafety(plan.View()))
	} else {
		res.Diags = append(res.Diags, verify.Diagnostic{
			Sev:   verify.SevWarning,
			Check: "plan-unavailable",
			Msg:   fmt.Sprintf("module not plannable, plan safety skipped: %v", err),
		})
	}
	res.Merge(analysis.QuantRanges(lib.Module))
	regions := make([]string, 0, len(lib.External))
	for name := range lib.External {
		regions = append(regions, name)
	}
	sort.Strings(regions)
	for _, name := range regions {
		res.Merge(analysis.DeviceLegality(name, lib.External[name]))
	}
	res.Merge(analysis.DeadCode(lib.Module))
	return res
}

// runAnalyze prints every diagnostic and reports whether the library is free
// of error-severity findings.
func runAnalyze(label string, lib *runtime.Lib) bool {
	res := analyzeLib(lib)
	for _, d := range res.Diags {
		fmt.Println("npc:", d)
	}
	if !res.OK() {
		fmt.Fprintf(os.Stderr, "npc: analyze %s: %d error(s)\n", label, len(res.Errors()))
		return false
	}
	fmt.Printf("npc: analyze %s: clean (%d warning(s))\n", label, len(res.Diags))
	return true
}

// analyzeZoo compiles and analyzes every model-zoo entry, exiting non-zero
// if any model produces an error-severity finding.
func analyzeZoo(sizeFlag string, opts runtime.BuildOptions) {
	size := models.SizeLite
	if sizeFlag == "full" {
		size = models.SizeFull
	}
	ok := true
	for _, n := range models.Names() {
		spec, err := models.Get(n)
		fatal(err)
		m, err := spec.Build(size)
		fatal(err)
		lib, err := core.Compile(m, opts)
		fatal(err)
		if !runAnalyze(n, lib) {
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// runLint cross-checks the operator registries: every relay op with an NIR
// handler must be registered, every TOPI kernel must implement a registered
// op, and every Neuron opcode must resolve to real kernels and at least one
// backend device. Exits non-zero when any registry is inconsistent.
func runLint() {
	res := verify.Registries(nir.VerifySnapshot())
	for _, d := range res.Diags {
		fmt.Println("npc:", d)
	}
	if !res.OK() {
		fmt.Fprintf(os.Stderr, "npc: registry lint failed with %d errors\n", len(res.Errors()))
		os.Exit(1)
	}
	snap := nir.VerifySnapshot()
	fmt.Printf("npc: registries consistent: %d relay ops, %d NIR handlers, %d TOPI kernels, %d Neuron opcodes\n",
		len(snap.RelayOps), len(snap.NIRHandlers), len(snap.TOPIKernels), len(neuron.OpCodes()))
}

func parseTargets(s string) ([]soc.DeviceKind, error) {
	var out []soc.DeviceKind
	for _, part := range strings.Split(s, ",") {
		switch strings.TrimSpace(part) {
		case "cpu":
			out = append(out, soc.KindCPU)
		case "apu":
			out = append(out, soc.KindAPU)
		case "":
		default:
			return nil, fmt.Errorf("npc: unknown target %q (want cpu, apu)", part)
		}
	}
	return out, nil
}

// fatal exits non-zero on error. A *verify.Error is unwrapped into its
// individual diagnostics so -verify failures print one structured finding
// per line, in the same shape -lint and -analyze use.
func fatal(err error) {
	if err == nil {
		return
	}
	var verr *verify.Error
	if errors.As(err, &verr) {
		for _, d := range verr.Diags {
			fmt.Fprintln(os.Stderr, "npc:", d)
		}
		fmt.Fprintf(os.Stderr, "npc: verification failed with %d diagnostic(s)\n", len(verr.Diags))
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "npc:", err)
	os.Exit(1)
}
