// Command nprouter is the fleet tier's tracker/router: npserve workers
// register with it (device key + base URL) and heartbeat; the router
// health-checks them, routes /v1/infer across the fleet with consistent
// (model, seed)-sharded worker selection and retry-on-dead-worker, and
// aggregates fleet-wide observability.
//
// Usage:
//
//	nprouter                          # listen on :8090
//	nprouter -addr :9090 -health-interval 1s -heartbeat-timeout 5s
//	nprouter -pprof                   # expose /debug/pprof/
//
// A sample fleet session:
//
//	nprouter &
//	npserve -addr :8081 -router http://localhost:8090 -key d9000-0 &
//	npserve -addr :8082 -router http://localhost:8090 -key d9000-1 &
//	curl -s localhost:8090/fleet/workers
//	curl -s -X POST localhost:8090/v1/infer -d '{"model":"emotion","seed":7}'
//	curl -s localhost:8090/statsz             # fleet-wide stats
//	curl -s localhost:8090/metricsz           # merged exposition, worker labels
//	curl -s localhost:8090/dashboardz         # SLO-driven fleet health dashboard
//	curl -s localhost:8090/tracez?id=<trace>  # stitched fleet-wide Chrome trace
//	curl -s localhost:8090/debugz/requests    # merged flight recorders
package main

import (
	"context"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/obs"
)

var log = obs.NewLogger(os.Stderr, "nprouter", obs.LevelInfo)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		interval  = flag.Duration("health-interval", 2*time.Second, "worker health-probe period")
		timeout   = flag.Duration("heartbeat-timeout", 10*time.Second, "mark a worker unhealthy after this long without a heartbeat or probe")
		reqBudget = flag.Duration("request-timeout", 30*time.Second, "per-attempt budget for proxied worker requests")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")
	)
	flag.Parse()

	lv, err := obs.ParseLevel(*logLevel)
	fatal(err)
	log = obs.NewLogger(os.Stderr, "nprouter", lv)

	rt := fleet.NewRouter(fleet.Options{
		HealthInterval:   *interval,
		HeartbeatTimeout: *timeout,
		Client:           &http.Client{Timeout: *reqBudget},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.HealthCheckLoop(ctx)

	handler := rt.Handler()
	if *pprofOn {
		outer := http.NewServeMux()
		outer.Handle("/debug/pprof/", obs.PprofHandler())
		outer.Handle("/", handler)
		handler = outer
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}
	hs := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Info("tracking fleet", "addr", *addr, "register", "POST /fleet/register")
	log.Info("fleet observability mounted", "stats", "/statsz", "metrics", "/metricsz",
		"dashboard", "/dashboardz", "trace", "/tracez", "flight", "/debugz/requests")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		log.Info("shutting down", "signal", s.String())
		cancel()
		shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shCancel()
		_ = hs.Shutdown(shCtx)
	}
}

func fatal(err error) {
	if err != nil {
		log.Error(err.Error())
		os.Exit(1)
	}
}
