// Command nprouter is the fleet tier's tracker/router: npserve workers
// register with it (device key + base URL) and heartbeat; the router
// health-checks them, routes /v1/infer across the fleet with consistent
// (model, seed)-sharded worker selection and retry-on-dead-worker, and
// aggregates fleet-wide observability.
//
// Usage:
//
//	nprouter                          # listen on :8090
//	nprouter -addr :9090 -health-interval 1s -heartbeat-timeout 5s
//
// A sample fleet session:
//
//	nprouter &
//	npserve -addr :8081 -router http://localhost:8090 -key d9000-0 &
//	npserve -addr :8082 -router http://localhost:8090 -key d9000-1 &
//	curl -s localhost:8090/fleet/workers
//	curl -s -X POST localhost:8090/v1/infer -d '{"model":"emotion","seed":7}'
//	curl -s localhost:8090/statsz             # fleet-wide stats
//	curl -s localhost:8090/metricsz           # merged exposition, worker labels
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	var (
		addr      = flag.String("addr", ":8090", "listen address")
		interval  = flag.Duration("health-interval", 2*time.Second, "worker health-probe period")
		timeout   = flag.Duration("heartbeat-timeout", 10*time.Second, "mark a worker unhealthy after this long without a heartbeat or probe")
		reqBudget = flag.Duration("request-timeout", 30*time.Second, "per-attempt budget for proxied worker requests")
	)
	flag.Parse()

	rt := fleet.NewRouter(fleet.Options{
		HealthInterval:   *interval,
		HeartbeatTimeout: *timeout,
		Client:           &http.Client{Timeout: *reqBudget},
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.HealthCheckLoop(ctx)

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("nprouter: tracking on %s (register: POST %s/fleet/register)\n", *addr, *addr)
	fmt.Printf("nprouter: fleet observability at %s/statsz, %s/metricsz\n", *addr, *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "nprouter:", err)
		os.Exit(1)
	case s := <-sig:
		fmt.Printf("\nnprouter: %v: shutting down\n", s)
		cancel()
		shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer shCancel()
		_ = hs.Shutdown(shCtx)
	}
}
