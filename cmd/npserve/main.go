// Command npserve is the serving binary: it compiles zoo models and exposes
// them as concurrent, deadline-aware HTTP inference endpoints backed by
// internal/serve's module pools, dynamic micro-batching, and admission
// control.
//
// Usage:
//
//	npserve                                  # serve the three showcase models + /v1/showcase
//	npserve -models "emotion,mobilenet v2"   # serve specific zoo models
//	npserve -pool 4 -batch 8 -window 2ms     # bigger pools, micro-batching on
//	npserve -addr :9000 -size full
//	npserve -artifact-cache /var/np/cache    # content-addressed compiled-Lib store
//	npserve -router http://host:8090 -key d9000-0   # join an nprouter fleet
//	npserve -slo-threshold-ms 50 -slo-quantile 0.95 # tighter latency objective
//	npserve -pprof                           # expose /debug/pprof/
//
// A sample session:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/infer -d '{"model":"emotion","seed":7}'
//	curl -s -X POST localhost:8080/v1/showcase -d '{"frames":2}'
//	curl -s localhost:8080/statsz
//	curl -s localhost:8080/metricsz          # Prometheus text exposition
//	curl -s localhost:8080/tracez > t.json   # worker spans, Perfetto-loadable
//	curl -s localhost:8080/debugz/requests   # flight recorder: recent + slow
//	curl -s localhost:8080/debugz/cache      # artifact-cache hit counters
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/app"
	"repro/internal/fleet"
	"repro/internal/models"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/tune"
)

var log = obs.NewLogger(os.Stderr, "npserve", obs.LevelInfo)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelsArg = flag.String("models", "showcase", `comma-separated zoo models, or "showcase" for the §4 trio + /v1/showcase`)
		sizeArg   = flag.String("size", "lite", "model build preset: lite|full")
		pool      = flag.Int("pool", 2, "GraphModule instances (and workers) per model")
		queue     = flag.Int("queue", 64, "admission queue depth per model")
		batch     = flag.Int("batch", 1, "max micro-batch size (1 = batching off)")
		window    = flag.Duration("window", 2*time.Millisecond, "micro-batch coalescing window")
		executor  = flag.String("executor", "auto", "executor: plan|interp|auto")
		noNIR     = flag.Bool("no-nir", false, "disable NeuroPilot partitioning (TVM-only builds)")
		drainWait = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget")
		tuneWith  = flag.String("tune-with", "", "tuning-record file (nptune output) to steer kernel dispatch")
		cacheDir  = flag.String("artifact-cache", "", "directory for the content-addressed compiled-Lib store (empty = in-memory only)")
		version   = flag.String("model-version", "v1", "version label for the deployed models (registry endpoint name@version)")
		routerURL = flag.String("router", "", "nprouter base URL to register with (joins the fleet)")
		workerKey = flag.String("key", "", "device key announced to the router (required with -router)")
		advertise = flag.String("advertise", "", "base URL the router reaches this worker at (default derived from -addr)")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof at /debug/pprof/")
		slowMs    = flag.Float64("slow-ms", serve.DefaultSlowThresholdMs, "flight-recorder slow-lane threshold in milliseconds")
		sloMs     = flag.Float64("slo-threshold-ms", 1000, "per-model SLO latency threshold in milliseconds (0 disables SLO tracking)")
		sloQ      = flag.Float64("slo-quantile", 0.99, "SLO objective quantile in (0,1)")
		sloWindow = flag.Duration("slo-window", 5*time.Minute, "SLO estimator window")
	)
	flag.Parse()

	lv, err := obs.ParseLevel(*logLevel)
	fatal(err)
	log = obs.NewLogger(os.Stderr, "npserve", lv)

	kind, err := runtime.ParseExecutorKind(*executor)
	fatal(err)
	size := models.SizeLite
	switch *sizeArg {
	case "lite":
	case "full":
		size = models.SizeFull
	default:
		fatal(fmt.Errorf("npserve: unknown -size %q (want lite or full)", *sizeArg))
	}

	srv := serve.NewServer()
	if *workerKey != "" {
		srv.SetWorkerKey(*workerKey)
	}
	srv.ConfigureFlightRecorder(0, 0, *slowMs)
	var tuningBytes []byte
	if *tuneWith != "" {
		tbl, n, err := tune.LoadAndInstall(*tuneWith)
		fatal(err)
		tbl.EnableMetrics(srv.Metrics())
		tuningBytes, err = os.ReadFile(*tuneWith)
		fatal(err)
		log.Info("loaded tuning records", "file", *tuneWith, "records", n, "configs", tbl.Len())
	}
	cache, err := registry.NewCache(*cacheDir)
	fatal(err)
	cache.EnableMetrics(srv.Metrics())
	srv.Mount("/debugz/cache", cache.Handler())
	reg := registry.New(srv)
	opts := serve.ModelOptions{
		Pool:        *pool,
		QueueDepth:  *queue,
		MaxBatch:    *batch,
		BatchWindow: *window,
		Executor:    kind,
	}
	slo := obs.SLO{ObjectiveQuantile: *sloQ, ThresholdMs: *sloMs, Window: *sloWindow}

	names := splitModels(*modelsArg)
	withShowcase := false
	if len(names) == 1 && names[0] == "showcase" {
		withShowcase = true
		names = nil
		for _, s := range models.Showcase() {
			names = append(names, s.Name)
		}
	}
	// loadModel materializes one zoo model through the artifact cache: the
	// content address covers the module, the build options, and any tuning
	// records, so a warmed -artifact-cache directory makes startup (and every
	// sibling worker's startup) a load instead of a compile.
	bopts := runtime.BuildOptions{OptLevel: 3, UseNIR: !*noNIR}
	loadModel := func(name string) (*runtime.Lib, string, bool, error) {
		spec, err := models.Get(name)
		if err != nil {
			return nil, "", false, err
		}
		mod, err := spec.Build(size)
		if err != nil {
			return nil, "", false, err
		}
		key, err := registry.Key(mod, bopts, tuningBytes)
		if err != nil {
			return nil, "", false, err
		}
		lib, hit, err := cache.GetOrBuild(key, nil, func() (*runtime.Lib, error) {
			return runtime.Build(mod, bopts)
		})
		return lib, key, hit, err
	}
	for _, name := range names {
		spec, err := models.Get(name)
		fatal(err)
		log.Info("loading model", "model", name, "framework", spec.Framework, "preset", *sizeArg)
		lib, key, hit, err := loadModel(name)
		fatal(err)
		fatal(reg.Deploy(name, *version, lib, opts, key))
		endpoint := registry.EndpointName(name, *version)
		if *sloMs > 0 {
			srv.SetSLO(endpoint, slo)
		}
		how := "compiled"
		if hit {
			how = "artifact-cache hit"
		}
		log.Info("deployed model", "model", name, "version", *version, "via", how,
			"key", fmt.Sprintf("%.12s", key), "pool", *pool, "queue", *queue, "batch", *batch,
			"devices", fmt.Sprint(must(srv.Endpoint(endpoint)).Devices))
	}
	srv.Mount("/admin/", reg.AdminHandler(func(model, modelVersion string) (*runtime.Lib, serve.ModelOptions, string, error) {
		lib, key, _, err := loadModel(model)
		return lib, opts, key, err
	}))
	if withShowcase {
		log.Info("building the /v1/showcase application", "models", 3)
		cfg := app.DefaultConfig()
		cfg.Size = size
		cfg.Executor = kind
		fatal(srv.RegisterShowcase(cfg))
	}
	if *pprofOn {
		srv.Mount("/debug/pprof/", obs.PprofHandler())
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	log.Info("serving", "models", fmt.Sprint(srv.Models()), "addr", *addr)
	log.Info("observability mounted", "stats", "/statsz", "metrics", "/metricsz",
		"trace", "/tracez", "flight", "/debugz/requests", "cache", "/debugz/cache")

	agentCtx, agentStop := context.WithCancel(context.Background())
	defer agentStop()
	var agent *fleet.Agent
	if *routerURL != "" {
		if *workerKey == "" {
			fatal(fmt.Errorf("npserve: -router requires -key (the fleet-unique device key)"))
		}
		agent = &fleet.Agent{RouterURL: *routerURL, Key: *workerKey, SelfURL: selfURL(*advertise, *addr)}
		go agent.Run(agentCtx)
		log.Info("joining fleet", "router", *routerURL, "key", *workerKey, "self", agent.SelfURL)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		log.Info("draining", "signal", s.String())
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if agent != nil {
			agentStop()
			_ = agent.Deregister(ctx) // leave the fleet before refusing work
		}
		srv.Drain()
		_ = hs.Shutdown(ctx)
		log.Info("drained, bye")
	}
}

// selfURL derives the base URL the router should reach this worker at when
// -advertise is not given: a bare ":port" listen address advertises
// loopback, anything else is used as host:port directly.
func selfURL(advertise, addr string) string {
	if advertise != "" {
		return advertise
	}
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}

// splitModels splits the -models flag on commas (zoo names contain spaces
// but not commas).
func splitModels(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func must(o serve.ModelOptions, err error) serve.ModelOptions {
	fatal(err)
	return o
}

func fatal(err error) {
	if err != nil {
		log.Error(err.Error())
		os.Exit(1)
	}
}
