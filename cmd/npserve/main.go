// Command npserve is the serving binary: it compiles zoo models and exposes
// them as concurrent, deadline-aware HTTP inference endpoints backed by
// internal/serve's module pools, dynamic micro-batching, and admission
// control.
//
// Usage:
//
//	npserve                                  # serve the three showcase models + /v1/showcase
//	npserve -models "emotion,mobilenet v2"   # serve specific zoo models
//	npserve -pool 4 -batch 8 -window 2ms     # bigger pools, micro-batching on
//	npserve -addr :9000 -size full
//
// A sample session:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/infer -d '{"model":"emotion","seed":7}'
//	curl -s -X POST localhost:8080/v1/showcase -d '{"frames":2}'
//	curl -s localhost:8080/statsz
//	curl -s localhost:8080/metricsz          # Prometheus text exposition
//	curl -s localhost:8080/tracez > t.json   # worker spans, Perfetto-loadable
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/app"
	"repro/internal/models"
	"repro/internal/runtime"
	"repro/internal/serve"
	"repro/internal/tune"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		modelsArg = flag.String("models", "showcase", `comma-separated zoo models, or "showcase" for the §4 trio + /v1/showcase`)
		sizeArg   = flag.String("size", "lite", "model build preset: lite|full")
		pool      = flag.Int("pool", 2, "GraphModule instances (and workers) per model")
		queue     = flag.Int("queue", 64, "admission queue depth per model")
		batch     = flag.Int("batch", 1, "max micro-batch size (1 = batching off)")
		window    = flag.Duration("window", 2*time.Millisecond, "micro-batch coalescing window")
		executor  = flag.String("executor", "auto", "executor: plan|interp|auto")
		noNIR     = flag.Bool("no-nir", false, "disable NeuroPilot partitioning (TVM-only builds)")
		drainWait = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget")
		tuneWith  = flag.String("tune-with", "", "tuning-record file (nptune output) to steer kernel dispatch")
	)
	flag.Parse()

	kind, err := runtime.ParseExecutorKind(*executor)
	fatal(err)
	size := models.SizeLite
	switch *sizeArg {
	case "lite":
	case "full":
		size = models.SizeFull
	default:
		fatal(fmt.Errorf("npserve: unknown -size %q (want lite or full)", *sizeArg))
	}

	srv := serve.NewServer()
	if *tuneWith != "" {
		tbl, n, err := tune.LoadAndInstall(*tuneWith)
		fatal(err)
		tbl.EnableMetrics(srv.Metrics())
		fmt.Printf("npserve: loaded %d tuning record(s) from %s (%d kernel config(s))\n",
			n, *tuneWith, tbl.Len())
	}
	opts := serve.ModelOptions{
		Pool:        *pool,
		QueueDepth:  *queue,
		MaxBatch:    *batch,
		BatchWindow: *window,
		Executor:    kind,
	}

	names := splitModels(*modelsArg)
	withShowcase := false
	if len(names) == 1 && names[0] == "showcase" {
		withShowcase = true
		names = nil
		for _, s := range models.Showcase() {
			names = append(names, s.Name)
		}
	}
	for _, name := range names {
		spec, err := models.Get(name)
		fatal(err)
		fmt.Printf("npserve: building %s (%s, %s preset)...\n", name, spec.Framework, *sizeArg)
		mod, err := spec.Build(size)
		fatal(err)
		lib, err := runtime.Build(mod, runtime.BuildOptions{OptLevel: 3, UseNIR: !*noNIR})
		fatal(err)
		fatal(srv.Register(name, lib, opts))
		fmt.Printf("npserve: registered %q: pool=%d queue=%d batch=%d devices=%v\n",
			name, *pool, *queue, *batch, must(srv.Endpoint(name)).Devices)
	}
	if withShowcase {
		fmt.Println("npserve: building the /v1/showcase application (3 models)...")
		cfg := app.DefaultConfig()
		cfg.Size = size
		cfg.Executor = kind
		fatal(srv.RegisterShowcase(cfg))
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.ListenAndServe() }()
	fmt.Printf("npserve: serving %v on %s\n", srv.Models(), *addr)
	fmt.Printf("npserve: observability at %s/statsz, %s/metricsz (Prometheus), %s/tracez (Perfetto)\n",
		*addr, *addr, *addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		fmt.Printf("\nnpserve: %v: draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		srv.Drain()
		_ = hs.Shutdown(ctx)
		fmt.Println("npserve: drained, bye")
	}
}

// splitModels splits the -models flag on commas (zoo names contain spaces
// but not commas).
func splitModels(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func must(o serve.ModelOptions, err error) serve.ModelOptions {
	fatal(err)
	return o
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "npserve:", err)
		os.Exit(1)
	}
}
