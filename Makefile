GO ?= go

.PHONY: check build fmt vet test race lint npvet analyze bench bench-compare trace-demo tune-smoke fleet-smoke

# check is the tier-1 gate: build + formatting + vet + race-enabled tests +
# cross-registry lint + the custom npvet analyzers + the dataflow analyses
# over the model zoo. CI and pre-commit hooks should run exactly this.
check: build fmt vet race lint npvet analyze

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/npc -lint

# npvet runs the repo-invariant analyzers (hotpath no-alloc, obs span
# pairing, DeviceLocks ordering) over all first-party Go source.
npvet:
	$(GO) run ./cmd/npvet ./cmd ./internal ./examples

# analyze runs the dataflow analyses — plan safety, quantization ranges,
# device-transfer legality, dead code — over every model-zoo entry.
analyze:
	$(GO) run ./cmd/npc -zoo all -analyze

# bench writes the machine-readable run log to BENCH_PR10.json (test2json
# event stream, one JSON object per line) while echoing the human-readable
# benchmark lines to stdout. Override BENCHTIME for a quick smoke run
# (e.g. make bench BENCHTIME=1x).
BENCHTIME ?= 1s
BENCHOUT ?= BENCH_PR10.json
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=$(BENCHTIME) -json . | \
		tee $(BENCHOUT) | \
		sed -n 's/.*"Output":"\(.*\)\\n"}$$/\1/p' | sed -e 's/\\t/\t/g' -e 's/\\u003e/>/g'

# bench-compare diffs a fresh bench run against the committed baseline and
# exits nonzero on a >10% ns/op or allocs/op regression. CI runs it
# non-blocking (machine noise on shared runners is real); use it locally to
# spot-check a perf-sensitive change.
BENCHBASE ?= BENCH_PR10.json
bench-compare:
	$(GO) run ./cmd/npbench -compare $(BENCHBASE) bench-new.json

# tune-smoke exercises the autotuner end to end on one zoo model with a
# tiny budget: the produced records must load cleanly and change at least
# one dispatch decision (nptune -check exits nonzero otherwise). CI runs it
# non-blocking — with a near-zero budget on a noisy shared runner the
# search can legitimately conclude every default is already optimal.
TUNEOUT ?= tune-smoke.json
TUNEBUDGET ?= 8
tune-smoke:
	rm -f $(TUNEOUT)
	$(GO) run ./cmd/nptune -zoo emotion -budget $(TUNEBUDGET) -o $(TUNEOUT)
	$(GO) run ./cmd/nptune -check $(TUNEOUT) -zoo emotion

# fleet-smoke stands up the fleet tier in-process — an nprouter-equivalent
# router fronting two workers that share an artifact store — routes an
# inference through every zoo model, hot-loads a second model version,
# drains one worker, and verifies failover. FLEETOUT receives the final
# fleet-wide /statsz document, FLEETDASH a /dashboardz snapshot, and
# FLEETTRACE the stitched Chrome trace of one routed request (CI uploads
# all three as artifacts).
FLEETOUT ?= fleet-statsz.json
FLEETDASH ?= fleet-dashboard.html
FLEETTRACE ?= fleet-trace.json
fleet-smoke:
	FLEET_SMOKE=1 FLEET_SMOKE_OUT=$(abspath $(FLEETOUT)) \
	FLEET_SMOKE_DASH=$(abspath $(FLEETDASH)) \
	FLEET_SMOKE_TRACE=$(abspath $(FLEETTRACE)) \
		$(GO) test ./internal/fleet/ -run TestFleetSmoke -count=1 -v

# trace-demo compiles and runs the lite emotion model with profiling on and
# writes demo-trace.json — a Chrome/Perfetto trace with all three clock
# domains (compile passes, per-node executor spans, simulated device rows).
# CI uploads the file as an artifact.
TRACEOUT ?= demo-trace.json
trace-demo:
	$(GO) run ./cmd/npc -zoo emotion -run -profile -trace $(TRACEOUT)
