GO ?= go

.PHONY: check build fmt vet test race lint bench

# check is the tier-1 gate: build + formatting + vet + race-enabled tests +
# cross-registry lint. CI and pre-commit hooks should run exactly this.
check: build fmt vet race lint

build:
	$(GO) build ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: files need formatting:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

lint:
	$(GO) run ./cmd/npc -lint

bench:
	$(GO) test -bench=. -benchmem .
