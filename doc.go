// Package repro is a from-scratch Go reproduction of "Application Showcases
// for TVM with NeuroPilot on Mobile Devices" (ICPP Workshops '22): a
// mini-TVM graph compiler stack, a simulated MediaTek NeuroPilot stack
// (Neuron IR, Execution Planner, runtime) on a simulated Dimensity 800 SoC,
// the BYOC bridge between them, five model frontends, the three-model
// application showcase, and the computation/pipeline scheduling experiments.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate every table and figure:
//
//	go test -bench=. -benchmem .
package repro
